"""Scale-out serving: schedule one stream across N engine replicas.

The ROADMAP's north star is fleet-scale traffic; a single batch-1
accelerator saturates at ``1 / service_time`` requests per second.  A
:class:`Fleet` models the obvious scale-out: N identical replicas behind
a dispatcher.  Two dispatch policies are built in:

* ``"round-robin"`` — request *i* goes to replica ``i % N``; oblivious
  to load, cheap, and the right baseline.
* ``"least-loaded"`` — each request goes to the replica that will free
  up first (join-the-shortest-queue for deterministic service times),
  which strictly dominates round-robin on bursty Poisson traffic.

Dispatch decides *which replica* gets a request on arrival; each replica
then orders its own ready queue with a pluggable scheduler
(:mod:`repro.serving.scheduler`) and coalesces it with a pluggable
batching policy (:mod:`repro.serving.batching`), one instance of each
per replica.  The simulation itself is the shared heap-based event loop
in :mod:`repro.serving.events`.

Replicas share one prepared-model cache, so a fleet compiles each task
exactly once no matter how many replicas serve it — including replicas
added mid-stream by an :class:`~repro.serving.autoscaler.Autoscaler`,
which grows and shrinks the active set against queue depth and SLO
pressure and logs its actions on the report.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import ServingError
from repro.serving.autoscaler import Autoscaler
from repro.serving.batching import Batcher, make_batcher
from repro.serving.engine import ServeRequest, ServeResponse, ServingEngine, StreamReport
from repro.serving.events import StreamDispatcher, run_stream
from repro.serving.faults import FaultPolicy, make_fault_policy
from repro.serving.platform import Platform, PreparedModel
from repro.serving.scheduler import Scheduler, make_scheduler
from repro.serving.stats import StreamSummary
from repro.workloads.deepbench import RNNTask

__all__ = ["Fleet", "FleetReport", "SCHEDULING_POLICIES"]

SCHEDULING_POLICIES = ("round-robin", "least-loaded")


class _RoundRobinDispatcher(StreamDispatcher):
    """Request *i* to active replica ``i % N`` — oblivious and O(1)."""

    def __init__(self) -> None:
        self._active = 0

    def resize(self, active: int, work_until: Sequence[float]) -> None:
        self._active = active

    def choose(self, seq: int, request: ServeRequest) -> int:
        return seq % self._active


class _LeastLoadedDispatcher(StreamDispatcher):
    """Join-the-shortest-queue in O(log replicas) per arrival.

    The naive policy re-scans every active replica's projected
    completion time on each arrival — an O(replicas) pass that turns
    large-fleet streams quadratic.  This version keeps a lazy-deletion
    heap of ``(projected_completion, replica)``: :meth:`assign` pushes a
    fresh entry whenever the event loop advances one replica's
    projection (projections only ever grow, so older entries for the
    same replica are strictly smaller and recognized as stale), and
    :meth:`choose` pops stale or deactivated entries until the top is
    live.  The ``(value, index)`` heap order reproduces the naive scan's
    tie-break (earliest completion, lowest index) exactly.
    """

    def __init__(self) -> None:
        self._active = 0
        self._values: list[float] = []
        self._heap: list[tuple[float, int]] = []

    def resize(self, active: int, work_until: Sequence[float]) -> None:
        values = self._values
        for j in range(len(values), len(work_until)):
            values.append(work_until[j])
        if active > self._active:
            # Newly (re)activated replicas re-enter the heap at their
            # current projection; deactivated ones are pruned lazily.
            for j in range(self._active, active):
                heapq.heappush(self._heap, (values[j], j))
        self._active = active

    def assign(self, replica: int, work_until_s: float) -> None:
        self._values[replica] = work_until_s
        heapq.heappush(self._heap, (work_until_s, replica))

    def choose(self, seq: int, request: ServeRequest) -> int:
        heap = self._heap
        values = self._values
        active = self._active
        while True:
            value, j = heap[0]
            if j < active and values[j] == value:
                return j
            heapq.heappop(heap)


@dataclass(frozen=True)
class FleetReport(StreamReport):
    """A stream report plus the per-replica assignment it came from.

    Example::

        >>> from repro.serving import Fleet, uniform_arrivals
        >>> from repro.workloads.deepbench import task
        >>> fleet = Fleet("gpu", replicas=2, policy="round-robin")
        >>> report = fleet.serve_stream(uniform_arrivals(
        ...     task("lstm", 512, 25), rate_per_s=100, n_requests=10))
        >>> (report.n_replicas, report.per_replica_counts)
        (2, (5, 5))
    """

    policy: str = "round-robin"
    assignments: tuple[int, ...] = field(default=(), repr=False)
    #: Total replicas the stream used (autoscaled replicas included) —
    #: the peak capacity, not derived from the assignments, so idle
    #: replicas still count toward it.
    replicas: int = 1
    #: Replicas still active when the stream drained; below ``replicas``
    #: when the autoscaler scaled down.
    active_replicas: int = 1

    @property
    def n_replicas(self) -> int:
        return self.replicas

    @property
    def max_rate_per_s(self) -> float:
        """Sustainable rate of the whole fleet, not one replica.

        With autoscaling this is the *peak* capacity the stream reached
        (``replicas`` engines); the policy can re-grow to it on demand.
        """
        return super().max_rate_per_s * self.n_replicas

    @property
    def per_replica_counts(self) -> tuple[int, ...]:
        counts = [0] * self.n_replicas
        for replica in self.assignments:
            counts[replica] += 1
        return tuple(counts)

    def replica_utilization(self) -> tuple[float, ...]:
        """Busy fraction of each replica over the stream's makespan."""
        makespan = max(r.finish_s for r in self.responses)
        busy = [0.0] * self.n_replicas
        for replica, resp in zip(self.assignments, self.responses):
            busy[replica] += resp.service_s
        return tuple(b / makespan for b in busy)


class Fleet:
    """N engine replicas of one platform behind a dispatcher.

    Example::

        >>> from repro.serving import Fleet
        >>> fleet = Fleet("gpu", replicas=3, policy="least-loaded")
        >>> (fleet.n_replicas, fleet.platform_name)
        (3, 'gpu')
    """

    def __init__(
        self,
        platform: str | Platform,
        *,
        replicas: int = 2,
        policy: str = "round-robin",
        **platform_options: object,
    ) -> None:
        if replicas < 1:
            raise ServingError("a fleet needs at least one replica")
        if policy not in SCHEDULING_POLICIES:
            raise ServingError(
                f"unknown scheduling policy {policy!r}; "
                f"known: {', '.join(SCHEDULING_POLICIES)}"
            )
        if not isinstance(platform, str) and platform_options:
            raise ServingError(
                "platform options only apply when platform is given by name"
            )
        self.policy = policy
        self._platform_spec = platform
        self._platform_options = platform_options
        # One engine per replica over a shared compile cache and a
        # shared result memo: the fleet prepares (and costs) each
        # distinct shape once, not once per replica — even for replicas
        # the autoscaler adds mid-stream.
        self._shared_cache: dict[RNNTask, PreparedModel] = {}
        self._shared_memo: dict = {}
        self.engines = tuple(self._new_engine() for _ in range(replicas))

    def _new_engine(self) -> ServingEngine:
        return ServingEngine(
            self._platform_spec,
            cache=self._shared_cache,
            memo=self._shared_memo,
            **self._platform_options,
        )

    @property
    def n_replicas(self) -> int:
        return len(self.engines)

    @property
    def platform_name(self) -> str:
        return self.engines[0].platform_name

    def _dispatcher(self) -> StreamDispatcher:
        # A fresh (stateful) incremental dispatcher per stream run; the
        # event loop feeds it per-replica projection deltas instead of
        # handing every arrival an O(replicas) snapshot.
        if self.policy == "round-robin":
            return _RoundRobinDispatcher()
        return _LeastLoadedDispatcher()

    def serve_stream(
        self,
        arrivals: Iterable[ServeRequest | RNNTask],
        *,
        slo_ms: float | None = None,
        scheduler: str | Callable[[], Scheduler] = "fifo",
        batcher: str | Callable[[], Batcher] = "none",
        max_batch: int | None = None,
        autoscaler: Autoscaler | None = None,
        mode: str = "full",
        presorted: bool = False,
        faults: str | FaultPolicy | Callable[[], FaultPolicy] = "none",
        fault_seed: int = 0,
        timeout_ms: float | None = None,
        retries: int = 0,
        hedge_ms: float | None = None,
    ) -> "FleetReport | StreamSummary":
        """Dispatch a timestamped stream across the replicas.

        The dispatcher assigns every request to a replica on arrival (no
        work stealing afterwards); each replica orders its own ready
        queue with a fresh instance of ``scheduler`` and coalesces it
        with a fresh instance of ``batcher`` — pass registry keys or
        zero-argument factories, not shared instances.  With an
        ``autoscaler``, the stream starts on the autoscaler's
        ``min_replicas`` and the active set grows and shrinks as the
        policy dictates; every replica (initial or grown) shares the
        fleet's compile cache, and the applied
        :class:`~repro.serving.autoscaler.ScaleEvent` log lands on the
        report.

        ``mode`` and ``presorted`` behave exactly as on
        :meth:`ServingEngine.serve_stream
        <repro.serving.engine.ServingEngine.serve_stream>`:
        ``mode="summary"`` folds responses into a
        :class:`~repro.serving.stats.StreamSummary` (O(1) memory, with
        online per-replica counts instead of per-request assignments)
        and ``presorted=True`` streams a lazy time-ordered input without
        materializing it.

        ``faults``/``fault_seed``/``timeout_ms``/``retries``/
        ``hedge_ms`` inject unreliable hardware exactly as on
        :meth:`ServingEngine.serve_stream`; replicas that crash recover
        through the fleet's replica factory, so a recovery re-binds the
        engine against the shared compile cache rather than silently
        reusing the dead instance.
        """
        if isinstance(scheduler, Scheduler):
            raise ServingError(
                "a fleet needs one scheduler per replica; pass a registry "
                "key or a factory, not a Scheduler instance"
            )
        if isinstance(batcher, Batcher):
            raise ServingError(
                "a fleet needs one batcher per replica; pass a registry "
                "key or a factory, not a Batcher instance"
            )
        options = {} if max_batch is None else {"max_batch": max_batch}

        def new_scheduler() -> Scheduler:
            return make_scheduler(scheduler)

        def new_batcher() -> Batcher:
            return make_batcher(batcher, **options)

        engines = list(self.engines)
        if autoscaler is not None:
            # Start at the policy floor; growth happens via the factory.
            while len(engines) < autoscaler.min_replicas:
                engines.append(self._new_engine())
            del engines[max(autoscaler.min_replicas, 1):]
        schedulers = [new_scheduler() for _ in engines]
        batchers = [new_batcher() for _ in engines]

        def replica_factory() -> tuple[ServingEngine, Scheduler, Batcher]:
            return self._new_engine(), new_scheduler(), new_batcher()

        if mode not in ("full", "summary"):
            raise ServingError(
                f"unknown stream mode {mode!r}; expected 'full' or 'summary'"
            )
        fault_policy = make_fault_policy(faults)
        faultless = (
            fault_policy.name == "none"
            and timeout_ms is None
            and hedge_ms is None
            and retries == 0  # so a timeout-less retries still validates
        )
        fault_kwargs = (
            {}
            if faultless
            else {
                "faults": fault_policy,
                "fault_seed": fault_seed,
                "timeout_ms": timeout_ms,
                "retries": retries,
                "hedge_ms": hedge_ms,
            }
        )
        summary = None
        if mode == "summary":
            summary = StreamSummary(
                self.platform_name,
                slo_ms=slo_ms,
                scheduler=schedulers[0].name,
                batcher=batchers[0].name,
                faults=fault_policy.name,
            )
        outcome = run_stream(
            arrivals,
            engines=engines,
            schedulers=schedulers,
            batchers=batchers,
            dispatch=self._dispatcher(),
            slo_ms=slo_ms,
            autoscaler=autoscaler,
            replica_factory=replica_factory,
            presorted=presorted,
            summary=summary,
            **fault_kwargs,
        )
        if summary is not None:
            return summary.finalize(
                scale_events=outcome.scale_events,
                replicas=outcome.n_replicas,
                active_replicas=outcome.active_replicas,
                policy=self.policy,
                fault_stats=outcome.fault_stats,
            )
        return FleetReport(
            platform=self.platform_name,
            responses=tuple(outcome.responses),
            slo_ms=slo_ms,
            scheduler=schedulers[0].name,
            batcher=batchers[0].name,
            scale_events=outcome.scale_events,
            policy=self.policy,
            assignments=tuple(outcome.assignments),
            replicas=outcome.n_replicas,
            active_replicas=outcome.active_replicas,
            faults=fault_policy.name,
            fault_stats=outcome.fault_stats,
        )
