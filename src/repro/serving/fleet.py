"""Scale-out serving: schedule one stream across N engine replicas.

The ROADMAP's north star is fleet-scale traffic; a single batch-1
accelerator saturates at ``1 / service_time`` requests per second.  A
:class:`Fleet` models the obvious scale-out: N identical replicas behind
a dispatcher.  Two dispatch policies are built in:

* ``"round-robin"`` — request *i* goes to replica ``i % N``; oblivious
  to load, cheap, and the right baseline.
* ``"least-loaded"`` — each request goes to the replica that will free
  up first (join-the-shortest-queue for deterministic service times),
  which strictly dominates round-robin on bursty Poisson traffic.

Dispatch decides *which replica* gets a request on arrival; each replica
then orders its own ready queue with a pluggable scheduler
(:mod:`repro.serving.scheduler` — FIFO, strict priority, EDF, SJF,
coalescing), one scheduler instance per replica.  The simulation itself
is the shared heap-based event loop in :mod:`repro.serving.events`.

Replicas share one prepared-model cache, so a fleet compiles each task
exactly once no matter how many replicas serve it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import ServingError
from repro.serving.engine import ServeRequest, ServeResponse, ServingEngine, StreamReport
from repro.serving.events import run_stream
from repro.serving.platform import Platform, PreparedModel
from repro.serving.scheduler import Scheduler, make_scheduler
from repro.workloads.deepbench import RNNTask

__all__ = ["Fleet", "FleetReport", "SCHEDULING_POLICIES"]

SCHEDULING_POLICIES = ("round-robin", "least-loaded")


@dataclass(frozen=True)
class FleetReport(StreamReport):
    """A stream report plus the per-replica assignment it came from."""

    policy: str = "round-robin"
    assignments: tuple[int, ...] = field(default=(), repr=False)
    #: The fleet's configured replica count — not derived from the
    #: assignments, so idle replicas still count toward capacity.
    replicas: int = 1

    @property
    def n_replicas(self) -> int:
        return self.replicas

    @property
    def max_rate_per_s(self) -> float:
        """Sustainable rate of the whole fleet, not one replica."""
        return super().max_rate_per_s * self.n_replicas

    @property
    def per_replica_counts(self) -> tuple[int, ...]:
        counts = [0] * self.n_replicas
        for replica in self.assignments:
            counts[replica] += 1
        return tuple(counts)

    def replica_utilization(self) -> tuple[float, ...]:
        """Busy fraction of each replica over the stream's makespan."""
        makespan = max(r.finish_s for r in self.responses)
        busy = [0.0] * self.n_replicas
        for replica, resp in zip(self.assignments, self.responses):
            busy[replica] += resp.service_s
        return tuple(b / makespan for b in busy)


class Fleet:
    """N engine replicas of one platform behind a dispatcher."""

    def __init__(
        self,
        platform: str | Platform,
        *,
        replicas: int = 2,
        policy: str = "round-robin",
        **platform_options: object,
    ) -> None:
        if replicas < 1:
            raise ServingError("a fleet needs at least one replica")
        if policy not in SCHEDULING_POLICIES:
            raise ServingError(
                f"unknown scheduling policy {policy!r}; "
                f"known: {', '.join(SCHEDULING_POLICIES)}"
            )
        if not isinstance(platform, str) and platform_options:
            raise ServingError(
                "platform options only apply when platform is given by name"
            )
        self.policy = policy
        shared_cache: dict[RNNTask, PreparedModel] = {}
        # One engine per replica over a shared compile cache: the fleet
        # prepares each distinct task once, not once per replica.
        self.engines = tuple(
            ServingEngine(platform, cache=shared_cache, **platform_options)
            for _ in range(replicas)
        )

    @property
    def n_replicas(self) -> int:
        return len(self.engines)

    @property
    def platform_name(self) -> str:
        return self.engines[0].platform_name

    def _dispatcher(self) -> Callable:
        n = self.n_replicas
        if self.policy == "round-robin":
            return lambda seq, req, work_until: seq % n
        # least-loaded: earliest projected completion wins, low index ties
        return lambda seq, req, work_until: min(
            range(n), key=lambda j: (work_until[j], j)
        )

    def serve_stream(
        self,
        arrivals: Iterable[ServeRequest | RNNTask],
        *,
        slo_ms: float | None = None,
        scheduler: str | Callable[[], Scheduler] = "fifo",
    ) -> FleetReport:
        """Dispatch a timestamped stream across the replicas.

        The dispatcher assigns every request to a replica on arrival (no
        work stealing afterwards); each replica orders its own ready
        queue with a fresh instance of ``scheduler`` — pass a registry
        key or a zero-argument factory, not a shared instance.
        """
        if isinstance(scheduler, Scheduler):
            raise ServingError(
                "a fleet needs one scheduler per replica; pass a registry "
                "key or a factory, not a Scheduler instance"
            )
        schedulers = tuple(make_scheduler(scheduler) for _ in self.engines)
        responses, assignments = run_stream(
            arrivals,
            engines=self.engines,
            schedulers=schedulers,
            dispatch=self._dispatcher(),
            slo_ms=slo_ms,
        )
        return FleetReport(
            platform=self.platform_name,
            responses=tuple(responses),
            slo_ms=slo_ms,
            scheduler=schedulers[0].name,
            policy=self.policy,
            assignments=tuple(assignments),
            replicas=self.n_replicas,
        )
