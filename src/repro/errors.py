"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  The subclasses partition
failures by subsystem: the Spatial-like DSL, the Plasticine machine model,
the mapper, and the configuration/validation layers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value (negative sizes, zero factors, ...)."""


class PrecisionError(ReproError):
    """An unsupported or inconsistent number-format request."""


class DSLError(ReproError):
    """Misuse of the Spatial-like DSL (bad shapes, out-of-context ops)."""


class DSLTypeError(DSLError):
    """A DSL expression was built from incompatible operand types."""


class DSLBoundsError(DSLError):
    """A DSL memory access is provably out of bounds."""


class InterpreterError(ReproError):
    """The DSL interpreter hit an unexecutable program state."""


class MappingError(ReproError):
    """The mapper could not lower a program onto the target chip."""


class ResourceError(MappingError):
    """The mapped design does not fit on the configured chip."""


class PlacementError(MappingError):
    """No legal placement exists for a pipeline graph."""


class SimulationError(ReproError):
    """The cycle-level simulator reached an inconsistent state."""


class WorkloadError(ReproError):
    """An unknown or malformed benchmark task was requested."""


class DSEError(ReproError):
    """Design-space exploration failed (empty space, no feasible point)."""


class ServingError(ReproError):
    """Invalid serving-engine usage (unknown platform, bad stream config)."""
