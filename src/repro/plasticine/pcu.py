"""Pattern Compute Unit: SIMD pipeline with reduction networks (Figure 6).

A PCU is a ``lanes``-wide, ``stages``-deep SIMD pipeline.  Pipeline
registers propagate live values between stages; a cross-lane network
performs reductions.  This module captures the timing and FU-utilization
consequences of the paper's micro-architectural changes:

* **Low-precision map-reduce** — with the fused opcodes (Figure 6d), the
  in-lane portion takes 2 stages + the existing 32-bit add; with the
  original opcodes (Figure 6b) it takes 5 stages.
* **Folded reduction tree** (Figure 6c) — the cross-lane tree collapses
  into a single pipeline stage (later tree levels scheduled onto earlier
  stage slots), keeping the full reduction+accumulation pipelined in
  ``log2(lanes) + 1`` cycles with no structural hazard.

The headline law this module must reproduce (end of Section 4.1): a PCU
performs a map-reduce accumulating ``4 * lanes`` 8-bit values using 4
stages, completing in ``2 + log2(lanes) + 1`` cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.plasticine.isa import Opcode, low_precision_map_reduce_schedule

__all__ = ["PCUConfig", "MapReduceTiming"]


@dataclass(frozen=True)
class PCUConfig:
    """Static configuration of a PCU.

    Attributes:
        lanes: SIMD width (16 in both chip configurations).
        stages: Pipeline depth (6 original, 4 in the RNN variant).
        regs_per_stage: Pipeline registers available per lane per stage.
        fused_low_precision: Figure 6(d) fused opcodes available.
        folded_reduction: Figure 6(c) folded tree available.
    """

    lanes: int = 16
    stages: int = 4
    regs_per_stage: int = 6
    fused_low_precision: bool = True
    folded_reduction: bool = True

    def __post_init__(self) -> None:
        if self.lanes < 2 or self.lanes & (self.lanes - 1):
            raise ConfigError(f"lanes must be a power of two >= 2, got {self.lanes}")
        if self.stages < 1:
            raise ConfigError(f"stages must be >= 1, got {self.stages}")
        if self.regs_per_stage < 2:
            raise ConfigError("need at least 2 pipeline registers per stage")

    # -- packing ----------------------------------------------------------

    def packing(self, bits: int) -> int:
        """Scalar values per 32-bit FU word at the given precision."""
        if bits not in (8, 16, 32):
            raise ConfigError(f"unsupported precision: {bits}-bit")
        return 32 // bits

    def values_per_cycle(self, bits: int) -> int:
        """Map throughput: elements consumed per cycle at full rate."""
        return self.lanes * self.packing(bits)

    # -- reduction network -------------------------------------------------

    def tree_levels(self) -> int:
        return int(math.log2(self.lanes))

    def reduction_cycles(self) -> int:
        """Cross-lane reduction + accumulation latency in cycles.

        Both the original pipelined tree and the folded tree take
        ``log2(lanes) + 1`` cycles; folding changes *stage usage*, not
        latency ("the entire reduction plus accumulation is still fully
        pipelined in log2(#LANE)+1 cycles with no structural hazard").
        """
        return self.tree_levels() + 1

    def reduction_stages_used(self) -> int:
        """Pipeline stages occupied by the reduction + accumulation."""
        if self.folded_reduction:
            return 1
        return self.tree_levels() + 1

    def reduction_fu_utilization(self) -> float:
        """Fraction of FU slots doing useful adds during the reduction.

        The tree performs ``lanes - 1`` adds plus 1 accumulate.  Unfolded,
        those occupy ``log2(lanes) + 1`` stages of ``lanes`` FUs each;
        folded, a single stage of ``lanes`` FUs re-used across
        ``log2(lanes) + 1`` cycles — the motivation for Figure 6(c).
        """
        useful = self.lanes  # (lanes - 1) tree adds + 1 accumulation
        total = self.lanes * self.reduction_stages_used()
        return useful / total

    # -- map-reduce timing --------------------------------------------------

    def map_stages(self, bits: int) -> int:
        """Pipeline stages used by the in-lane map + packing-split chain."""
        if bits == 32:
            return 1  # a single full-precision multiply stage
        schedule = low_precision_map_reduce_schedule(self.fused_low_precision)
        if bits == 16:
            # Skip the 8-bit front end: multiply packed 16-bit, split, add.
            return len(schedule) - 1
        return len(schedule)

    def map_reduce_timing(self, bits: int) -> "MapReduceTiming":
        """Timing of one full map-reduce over ``lanes * packing`` values."""
        map_stage_count = self.map_stages(bits)
        stages_used = map_stage_count + self.reduction_stages_used()
        if stages_used > self.stages:
            raise ConfigError(
                f"map-reduce needs {stages_used} stages but the PCU has "
                f"{self.stages}; enable fused/folded modes or add stages"
            )
        # The in-lane 32-bit add in the low-precision schedule overlaps the
        # first tree level conceptually; we count the published law:
        # fused: 2 (map) + log2(lanes) + 1.
        if bits == 32:
            depth = 1 + self.reduction_cycles()
        else:
            depth = (map_stage_count - 1) + self.reduction_cycles()
        return MapReduceTiming(
            elements_per_cycle=self.values_per_cycle(bits),
            stages_used=stages_used,
            depth_cycles=depth,
            initiation_interval=1,
        )


@dataclass(frozen=True)
class MapReduceTiming:
    """Result of :meth:`PCUConfig.map_reduce_timing`.

    Attributes:
        elements_per_cycle: Input elements consumed per cycle (= rv of a
            single PCU at this precision).
        stages_used: Physical pipeline stages occupied.
        depth_cycles: Latency from first input to accumulated output.
        initiation_interval: Cycles between successive vector inputs (1:
            the pipeline is fully pipelined).
    """

    elements_per_cycle: int
    stages_used: int
    depth_cycles: int
    initiation_interval: int
