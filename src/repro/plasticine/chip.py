"""Whole-chip Plasticine configurations (paper Tables 3 and 4).

Two presets:

* :meth:`PlasticineConfig.rnn_serving` — the paper's variant (Table 3):
  24x24 grid, 192 PCUs / 384 PMUs (2:1), 16 lanes, 4 stages, 84 kB PMUs,
  1 GHz.  Its derived specs must match Table 4: 31.5 MB on-chip, ~49
  peak 8-bit TFLOPS, ~12.5 peak 32-bit TFLOPS.
* :meth:`PlasticineConfig.isca2017` — the original ISCA'17 chip for
  comparison (checkerboard, 6-stage PCUs, 256 kB PMUs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.plasticine.network import GridLayout
from repro.plasticine.pcu import PCUConfig
from repro.plasticine.pmu import PMUConfig

__all__ = ["PlasticineConfig"]


@dataclass(frozen=True)
class PlasticineConfig:
    """A complete chip: grid layout + unit configs + clock."""

    name: str
    layout: GridLayout
    pcu: PCUConfig
    pmu: PMUConfig
    clock_ghz: float = 1.0
    hop_latency: int = 1
    #: Control/scheduling PCUs reserved by the outer controllers (the
    #: Sequential time-step controller and the H-loop counter chain);
    #: unavailable to the mapped datapath.
    reserved_pcus: int = 2

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ConfigError("clock must be positive")
        if self.hop_latency < 1:
            raise ConfigError("hop latency must be >= 1 cycle")
        if self.reserved_pcus < 0 or self.reserved_pcus >= self.layout.n_pcu:
            raise ConfigError("reserved_pcus out of range")

    # -- presets -----------------------------------------------------------

    @classmethod
    def rnn_serving(cls) -> "PlasticineConfig":
        """Table 3: the RNN-serving variant used in the evaluation."""
        return cls(
            name="plasticine-rnn",
            layout=GridLayout.rnn_variant(24, 24),
            pcu=PCUConfig(lanes=16, stages=4, fused_low_precision=True, folded_reduction=True),
            pmu=PMUConfig(capacity_bytes=84 * 1024, banks=16),
            clock_ghz=1.0,
        )

    @classmethod
    def isca2017(cls) -> "PlasticineConfig":
        """The original Plasticine (checkerboard 1:1, 6 stages, 256 kB)."""
        return cls(
            name="plasticine-isca17",
            layout=GridLayout.checkerboard(16, 8),
            pcu=PCUConfig(lanes=16, stages=6, fused_low_precision=False, folded_reduction=False),
            pmu=PMUConfig(capacity_bytes=256 * 1024, banks=16),
            clock_ghz=1.0,
        )

    # -- derived specs -------------------------------------------------------

    @property
    def n_pcu(self) -> int:
        return self.layout.n_pcu

    @property
    def n_pmu(self) -> int:
        return self.layout.n_pmu

    @property
    def usable_pcus(self) -> int:
        return self.n_pcu - self.reserved_pcus

    @property
    def onchip_bytes(self) -> int:
        """Total scratchpad capacity (Table 4's "on-chip memory")."""
        return self.n_pmu * self.pmu.capacity_bytes

    @property
    def onchip_mb(self) -> float:
        return self.onchip_bytes / 2**20

    def peak_ops_per_cycle(self, bits: int) -> int:
        """Peak FU operations per cycle at a precision.

        Counts every FU slot (lanes x stages) times the packing factor —
        the accounting under which Table 4 reports 49 TFLOPS for 8-bit
        (192 x 16 x 4 x 4 ~ 49k ops/cycle at 1 GHz).
        """
        return self.n_pcu * self.pcu.lanes * self.pcu.stages * self.pcu.packing(bits)

    def peak_tflops(self, bits: int) -> float:
        return self.peak_ops_per_cycle(bits) * self.clock_ghz * 1e9 / 1e12

    def dot_lanes_per_pcu(self, bits: int) -> int:
        """Weight elements one PCU's map-reduce consumes per cycle — the
        per-PCU contribution to ``rv`` (64 at 8-bit: 16 lanes x 4 packed)."""
        return self.pcu.values_per_cycle(bits)

    def compute_to_memory_read_ratio(self, bits: int = 32) -> float:
        """FU ops per scratchpad word read per cycle (Section 4.2).

        The original checkerboard gives 6:1 (6-stage PCUs, 16-bank PMUs,
        1:1 ratio), starving RNN MVMs; the variant gives
        (4 x 16) / (2 x 16) = 2:1, matching the 2N^2 compute / N^2 read
        structure of an RNN cell.
        """
        ops = self.pcu.lanes * self.pcu.stages * self.n_pcu
        reads = self.pmu.banks * self.n_pmu
        return ops / reads

    def describe(self) -> dict[str, float | int | str]:
        """Table 3-style summary."""
        return {
            "name": self.name,
            "grid": f"{self.layout.rows}x{self.layout.cols}",
            "n_pcu": self.n_pcu,
            "n_pmu": self.n_pmu,
            "lanes": self.pcu.lanes,
            "stages": self.pcu.stages,
            "pmu_capacity_kb": self.pmu.capacity_bytes // 1024,
            "onchip_mb": round(self.onchip_mb, 2),
            "clock_ghz": self.clock_ghz,
            "peak_tflops_8bit": round(self.peak_tflops(8), 1),
            "peak_tflops_32bit": round(self.peak_tflops(32), 1),
        }
