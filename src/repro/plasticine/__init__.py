"""The Plasticine CGRA machine model (paper Sections 2.4 and 4).

* :mod:`repro.plasticine.isa` — FU opcodes, including the four
  low-precision operations added in Figure 6(b) and their fused forms.
* :mod:`repro.plasticine.pcu` — Pattern Compute Unit: SIMD pipeline,
  pipeline registers, original vs folded reduction networks, and the
  map-reduce timing law ``2 + log2(lanes) + 1``.
* :mod:`repro.plasticine.pmu` — Pattern Memory Unit: banked scratchpad
  with capacity/bandwidth/conflict checks.
* :mod:`repro.plasticine.network` — checkerboard and RNN-variant
  (Figure 7) grid layouts with Manhattan routing.
* :mod:`repro.plasticine.chip` — whole-chip configurations (Table 3).
* :mod:`repro.plasticine.area_power` — 28 nm area/power characterization
  and activity-based power integration.
* :mod:`repro.plasticine.simulator` — cycle-level simulation of mapped
  pipeline graphs.
"""

from repro.plasticine.chip import PlasticineConfig
from repro.plasticine.pcu import MapReduceTiming, PCUConfig
from repro.plasticine.pmu import PMUConfig
from repro.plasticine.network import GridLayout
from repro.plasticine.area_power import AreaPowerModel
from repro.plasticine.simulator import SimulationResult, simulate_pipeline

__all__ = [
    "PlasticineConfig",
    "PCUConfig",
    "PMUConfig",
    "MapReduceTiming",
    "GridLayout",
    "AreaPowerModel",
    "SimulationResult",
    "simulate_pipeline",
]
