"""Area and power characterization (28 nm, 1 GHz — paper Section 5.1).

Per-unit area constants come from the original Plasticine paper (ISCA'17:
PCU 0.849 mm2, PMU 0.532 mm2); the paper keeps the PCU estimate unchanged
despite dropping two stages ("we conservatively estimate the area and
power of PCU stays the same").  The switch constant is calibrated so the
Table 3 configuration (192 PCU + 384 PMU + 25x25 switches) totals the
published die area of 494.37 mm2 (Table 4).

Power: a static floor plus per-unit dynamic power scaled by *activity* —
the fraction of cycles a unit is busy, produced by the cycle simulator.
Dynamic constants are calibrated so that (a) every-unit-busy equals the
160 W TDP of Table 4 and (b) the simulated DeepBench points land in
Table 6's 28-118 W range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.plasticine.chip import PlasticineConfig

__all__ = ["AreaPowerModel", "ActivityProfile"]


@dataclass(frozen=True)
class ActivityProfile:
    """Average busy-unit counts over a run (unit-cycles per cycle).

    ``pcu_busy = 12.5`` means that on an average cycle 12.5 PCUs are
    actively computing.
    """

    pcu_busy: float
    pmu_busy: float
    switch_busy: float = 0.0

    def __post_init__(self) -> None:
        if min(self.pcu_busy, self.pmu_busy, self.switch_busy) < 0:
            raise ConfigError("activity counts must be non-negative")


@dataclass(frozen=True)
class AreaPowerModel:
    """28 nm per-unit area/power constants."""

    pcu_area_mm2: float = 0.849
    pmu_area_mm2: float = 0.532
    switch_area_mm2: float = 0.2033
    static_w: float = 10.0
    pcu_dynamic_w: float = 0.52
    pmu_dynamic_w: float = 0.120
    switch_dynamic_w: float = 0.011

    # -- area --------------------------------------------------------------

    def chip_area_mm2(self, config: PlasticineConfig) -> float:
        """Total die area: compute + memory units + switch fabric."""
        layout = config.layout
        return (
            layout.n_pcu * self.pcu_area_mm2
            + layout.n_pmu * self.pmu_area_mm2
            + layout.n_switches * self.switch_area_mm2
        )

    # -- power -------------------------------------------------------------

    def chip_tdp_w(self, config: PlasticineConfig) -> float:
        """Peak power: every unit busy every cycle."""
        layout = config.layout
        return (
            self.static_w
            + layout.n_pcu * self.pcu_dynamic_w
            + layout.n_pmu * self.pmu_dynamic_w
            + layout.n_switches * self.switch_dynamic_w
        )

    def power_w(self, config: PlasticineConfig, activity: ActivityProfile) -> float:
        """Average power for a run with the given activity profile."""
        layout = config.layout
        if activity.pcu_busy > layout.n_pcu + 1e-9:
            raise ConfigError(
                f"pcu_busy {activity.pcu_busy:.1f} exceeds {layout.n_pcu} PCUs"
            )
        if activity.pmu_busy > layout.n_pmu + 1e-9:
            raise ConfigError(
                f"pmu_busy {activity.pmu_busy:.1f} exceeds {layout.n_pmu} PMUs"
            )
        return (
            self.static_w
            + activity.pcu_busy * self.pcu_dynamic_w
            + activity.pmu_busy * self.pmu_dynamic_w
            + activity.switch_busy * self.switch_dynamic_w
        )

    def performance_per_watt(
        self, config: PlasticineConfig, tflops: float, activity: ActivityProfile
    ) -> float:
        """Effective TFLOPS per watt (the paper's energy-efficiency axis)."""
        return tflops / self.power_w(config, activity)
