"""Chip grid layouts and routing (Figure 7).

The original Plasticine uses a checkerboard with a 1:1 PCU:PMU ratio.
The paper's RNN-serving variant doubles memory relative to compute:
each row repeats the pattern ``PMU PCU PMU`` (Figure 7), giving a 2:1
PMU:PCU ratio — on a 24x24 grid, 192 PCUs and 384 PMUs (Table 3).

Routing is a statically configured switch fabric; we model per-hop
registered switches with Manhattan distance between unit coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = ["GridLayout", "Coord"]

Coord = tuple[int, int]


@dataclass(frozen=True)
class GridLayout:
    """A rows x cols placement of PCUs and PMUs.

    Attributes:
        name: ``"checkerboard"`` or ``"rnn_variant"``.
        rows, cols: Grid dimensions (units, not switches).
        pcus: Coordinates of every PCU, row-major.
        pmus: Coordinates of every PMU, row-major.
    """

    name: str
    rows: int
    cols: int
    pcus: tuple[Coord, ...] = field(repr=False)
    pmus: tuple[Coord, ...] = field(repr=False)

    @classmethod
    def checkerboard(cls, rows: int, cols: int) -> "GridLayout":
        """Original Plasticine: alternating PCU/PMU, 1:1 ratio."""
        if rows < 1 or cols < 1:
            raise ConfigError("grid must be at least 1x1")
        pcus, pmus = [], []
        for r in range(rows):
            for c in range(cols):
                (pcus if (r + c) % 2 == 0 else pmus).append((r, c))
        return cls("checkerboard", rows, cols, tuple(pcus), tuple(pmus))

    @classmethod
    def rnn_variant(cls, rows: int, cols: int) -> "GridLayout":
        """Figure 7 variant: each row repeats ``PMU PCU PMU`` (2:1 ratio)."""
        if rows < 1 or cols < 1:
            raise ConfigError("grid must be at least 1x1")
        if cols % 3:
            raise ConfigError(
                f"rnn_variant needs cols divisible by 3 (PMU PCU PMU groups), got {cols}"
            )
        pcus, pmus = [], []
        for r in range(rows):
            for c in range(cols):
                (pcus if c % 3 == 1 else pmus).append((r, c))
        return cls("rnn_variant", rows, cols, tuple(pcus), tuple(pmus))

    # -- ratios ------------------------------------------------------------

    @property
    def n_pcu(self) -> int:
        return len(self.pcus)

    @property
    def n_pmu(self) -> int:
        return len(self.pmus)

    @property
    def pmu_to_pcu_ratio(self) -> float:
        return self.n_pmu / self.n_pcu

    @property
    def n_switches(self) -> int:
        """Switches sit at grid corners: (rows+1) x (cols+1)."""
        return (self.rows + 1) * (self.cols + 1)

    # -- routing -----------------------------------------------------------

    @staticmethod
    def manhattan(a: Coord, b: Coord) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def route_cycles(self, a: Coord, b: Coord, hop_latency: int = 1) -> int:
        """Latency of a statically routed path: one registered switch per
        hop plus one to enter the fabric."""
        if a == b:
            return 0
        return (self.manhattan(a, b) + 1) * hop_latency

    def diameter(self) -> int:
        """Worst-case Manhattan distance on the grid."""
        return (self.rows - 1) + (self.cols - 1)

    def nearest_pmus(self, at: Coord, k: int) -> list[Coord]:
        """The ``k`` PMUs closest to ``at`` (for weight placement)."""
        if k < 0:
            raise ConfigError("k must be >= 0")
        return sorted(self.pmus, key=lambda p: (self.manhattan(at, p), p))[:k]

    def ascii_diagram(self, max_rows: int = 6, max_cols: int = 12) -> str:
        """Small ASCII rendering of the layout's upper-left corner."""
        pcu_set = set(self.pcus)
        lines = []
        for r in range(min(self.rows, max_rows)):
            cells = []
            for c in range(min(self.cols, max_cols)):
                cells.append("PCU" if (r, c) in pcu_set else "PMU")
            lines.append(" ".join(cells))
        return "\n".join(lines)
