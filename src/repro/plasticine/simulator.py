"""Cycle-level simulation of placed pipeline graphs.

The simulator propagates per-iteration timing through the pipeline DAG:
iteration ``i`` enters stage ``s`` when (a) all of its producers have
emitted it and routed it over, and (b) the stage has recovered from
iteration ``i-1`` (its initiation interval).  Exit is entry plus the
stage latency.  The per-stage recurrence

    entry[i] = max(ready[i], entry[i-1] + II)

is solved in closed form with a cumulative maximum
(``entry = II*i + cummax(ready - II*i)``), so simulating thousands of
iterations costs a few numpy passes per stage — cycle-level fidelity at
vectorized speed.

Sequential time steps (the ``h_t`` feedback) cannot overlap, so the run
time is ``steps * (step_cycles + step_overhead)``.  The simulator also
produces per-stage busy counts, which feed the activity-based power model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.mapping.pipeline import PipelineGraph

__all__ = ["SimulationResult", "StageActivity", "simulate_pipeline"]


@dataclass(frozen=True)
class StageActivity:
    """Busy accounting for one stage across one step."""

    name: str
    busy_cycles: int
    entry_first: int
    exit_last: int

    def occupancy(self, step_cycles: int) -> float:
        """Fraction of the step this stage spent processing iterations."""
        if step_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / step_cycles)


@dataclass(frozen=True)
class SimulationResult:
    """Output of :func:`simulate_pipeline`."""

    name: str
    steps: int
    cycles_per_step: int
    step_overhead: int
    total_cycles: int
    activities: dict[str, StageActivity] = field(repr=False)

    def latency_seconds(self, clock_ghz: float) -> float:
        return self.total_cycles / (clock_ghz * 1e9)

    def latency_ms(self, clock_ghz: float) -> float:
        return self.latency_seconds(clock_ghz) * 1e3

    def busy_unit_cycles(self, graph: PipelineGraph, kind: str) -> float:
        """Total busy unit-cycles per step for ``kind`` ("pcu"/"pmu").

        Every replica of a stage runs the same schedule, so a stage's
        contribution is ``replicas * units * busy_cycles``.
        """
        total = 0.0
        for name, act in self.activities.items():
            stage = graph.stages[name]
            units = stage.n_pcus if kind == "pcu" else stage.n_pmus
            total += graph.replicas * units * act.busy_cycles
        return total

    def average_busy_units(self, graph: PipelineGraph, kind: str) -> float:
        """Average busy units per cycle across the whole run (for power)."""
        per_step = self.cycles_per_step + self.step_overhead
        if per_step <= 0:
            return 0.0
        return self.busy_unit_cycles(graph, kind) / per_step


def _entry_times(ready: np.ndarray, ii: int) -> np.ndarray:
    """Solve ``entry[i] = max(ready[i], entry[i-1] + ii)`` vectorized."""
    ramp = ii * np.arange(ready.size, dtype=np.int64)
    return ramp + np.maximum.accumulate(ready - ramp)


def simulate_pipeline(graph: PipelineGraph) -> SimulationResult:
    """Run the cycle-level timing simulation of one pipeline graph."""
    n = graph.n_iterations
    if n < 1:
        raise SimulationError(f"pipeline {graph.name!r} has no iterations")
    if graph.steps < 1:
        raise SimulationError(f"pipeline {graph.name!r} has no time steps")

    order = graph.topological_order()
    exits: dict[str, np.ndarray] = {}
    activities: dict[str, StageActivity] = {}

    for name in order:
        stage = graph.stages[name]
        preds = graph.predecessors(name)
        if preds:
            ready = np.zeros(n, dtype=np.int64)
            for src, route in preds:
                np.maximum(ready, exits[src] + route, out=ready)
        else:
            ready = np.zeros(n, dtype=np.int64)
        entry = _entry_times(ready, stage.ii)
        exit_t = entry + stage.latency
        exits[name] = exit_t
        activities[name] = StageActivity(
            name=name,
            busy_cycles=int(n * stage.ii),
            entry_first=int(entry[0]),
            exit_last=int(exit_t[-1]),
        )

    step_cycles = max(int(exits[name][-1]) for name in order)
    total = graph.steps * (step_cycles + graph.step_overhead)
    return SimulationResult(
        name=graph.name,
        steps=graph.steps,
        cycles_per_step=step_cycles,
        step_overhead=graph.step_overhead,
        total_cycles=total,
        activities=activities,
    )
