"""Functional-unit opcodes, including the paper's low-precision additions.

Figure 6(b) adds four opcodes to the PCU functional units:

1. ``MUL_4x8``   — element-wise multiply of 4 packed 8-bit floats,
2. ``SPLIT_8_16`` — rearrange 8-bit products into two registers padded
   to 16-bit,
3. ``ADD_2x16``  — element-wise add of 2 packed 16-bit floats,
4. ``SPLIT_16_32`` — rearrange 16-bit sums padded to 32-bit,

after which the existing ``ADD_32`` completes the in-lane reduction.
Figure 6(d) fuses 1+2 and 3+4 into single-stage operations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Opcode(enum.Enum):
    """PCU FU operations with their datapath width semantics."""

    # Original full-precision ops.
    ADD_32 = "add32"
    MUL_32 = "mul32"
    SUB_32 = "sub32"
    MAX_32 = "max32"
    MIN_32 = "min32"
    # Low-precision additions (Figure 6b).
    MUL_4x8 = "mul4x8"
    SPLIT_8_16 = "split8to16"
    ADD_2x16 = "add2x16"
    SPLIT_16_32 = "split16to32"
    # Fused forms (Figure 6d).
    FUSED_MUL_4x8_SPLIT = "mul4x8+split"
    FUSED_ADD_2x16_SPLIT = "add2x16+split"


@dataclass(frozen=True)
class OpcodeSpec:
    """Static properties of one opcode.

    Attributes:
        opcode: The operation.
        values_per_fu: Scalar values processed per FU per cycle (packing).
        is_low_precision: Whether it is one of the Figure 6 additions.
        is_fused: Whether it is a Figure 6(d) fused two-in-one stage.
    """

    opcode: Opcode
    values_per_fu: int
    is_low_precision: bool
    is_fused: bool = False


_SPECS = {
    Opcode.ADD_32: OpcodeSpec(Opcode.ADD_32, 1, False),
    Opcode.MUL_32: OpcodeSpec(Opcode.MUL_32, 1, False),
    Opcode.SUB_32: OpcodeSpec(Opcode.SUB_32, 1, False),
    Opcode.MAX_32: OpcodeSpec(Opcode.MAX_32, 1, False),
    Opcode.MIN_32: OpcodeSpec(Opcode.MIN_32, 1, False),
    Opcode.MUL_4x8: OpcodeSpec(Opcode.MUL_4x8, 4, True),
    Opcode.SPLIT_8_16: OpcodeSpec(Opcode.SPLIT_8_16, 4, True),
    Opcode.ADD_2x16: OpcodeSpec(Opcode.ADD_2x16, 2, True),
    Opcode.SPLIT_16_32: OpcodeSpec(Opcode.SPLIT_16_32, 2, True),
    Opcode.FUSED_MUL_4x8_SPLIT: OpcodeSpec(Opcode.FUSED_MUL_4x8_SPLIT, 4, True, True),
    Opcode.FUSED_ADD_2x16_SPLIT: OpcodeSpec(Opcode.FUSED_ADD_2x16_SPLIT, 2, True, True),
}


def spec(op: Opcode) -> OpcodeSpec:
    """Look up the static spec of an opcode."""
    return _SPECS[op]


def low_precision_map_reduce_schedule(fused: bool) -> list[Opcode]:
    """The in-lane schedule reducing 4 packed 8-bit products to one 32-bit
    value, before the cross-lane tree.

    Figure 6(b): five stages unfused; Figure 6(d): two fused stages plus
    the existing 32-bit add.
    """
    if fused:
        return [
            Opcode.FUSED_MUL_4x8_SPLIT,
            Opcode.FUSED_ADD_2x16_SPLIT,
            Opcode.ADD_32,
        ]
    return [
        Opcode.MUL_4x8,
        Opcode.SPLIT_8_16,
        Opcode.ADD_2x16,
        Opcode.SPLIT_16_32,
        Opcode.ADD_32,
    ]
