"""Pattern Memory Unit: banked, buffered scratchpad.

A PMU holds a configurable scratchpad that Spatial banks (to scale read
bandwidth with access parallelism) and buffers (to sustain pipelined
producers/consumers).  The RNN-serving chip shrinks each PMU to 84 kB
(Table 3) to match Stratix 10's on-chip capacity at the 2:1 PMU:PCU ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, ResourceError

__all__ = ["PMUConfig", "BankingPlan"]


@dataclass(frozen=True)
class PMUConfig:
    """Static configuration of a PMU.

    Attributes:
        capacity_bytes: Scratchpad size (84 kB RNN variant, 256 kB original).
        banks: Independent banks (parallel word accesses per cycle).
        word_bytes: Bank word width; low-precision packing keeps this at 4
            ("banking and DRAM access granularity remains intact").
        buffering: Buffer copies for pipelined reuse (2 = double buffered).
    """

    capacity_bytes: int = 84 * 1024
    banks: int = 16
    word_bytes: int = 4
    buffering: int = 2

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError("PMU capacity must be positive")
        if self.banks < 1 or self.banks & (self.banks - 1):
            raise ConfigError(f"banks must be a power of two >= 1, got {self.banks}")
        if self.word_bytes not in (2, 4, 8):
            raise ConfigError(f"unsupported bank word width: {self.word_bytes}")
        if self.buffering < 1:
            raise ConfigError("buffering must be >= 1")

    @property
    def usable_bytes(self) -> int:
        """Capacity available to one logical buffer copy."""
        return self.capacity_bytes // self.buffering

    @property
    def bytes_per_cycle(self) -> int:
        """Peak read bandwidth: one word per bank per cycle."""
        return self.banks * self.word_bytes

    def words_per_cycle(self) -> int:
        return self.banks

    def fits(self, n_bytes: int, *, buffered: bool = False) -> bool:
        """Whether ``n_bytes`` fit (in one buffer copy when ``buffered``)."""
        if n_bytes < 0:
            raise ConfigError("n_bytes must be >= 0")
        limit = self.usable_bytes if buffered else self.capacity_bytes
        return n_bytes <= limit

    def plan_banking(self, access_par: int, element_bytes: int) -> "BankingPlan":
        """Check a stride-1 vector access of ``access_par`` elements/cycle.

        Packed low-precision elements share words, so the word-level
        parallelism is ``ceil(access_par * element_bytes / word_bytes)``;
        a conflict-free schedule needs that many banks.
        """
        if access_par < 1:
            raise ConfigError("access_par must be >= 1")
        if element_bytes < 1:
            raise ConfigError("element_bytes must be >= 1")
        words = -(-access_par * element_bytes // self.word_bytes)
        if words > self.banks:
            raise ResourceError(
                f"access needs {words} words/cycle but the PMU has "
                f"{self.banks} banks"
            )
        return BankingPlan(banks_used=words, conflict_free=True)


@dataclass(frozen=True)
class BankingPlan:
    """Result of a banking feasibility check."""

    banks_used: int
    conflict_free: bool
