"""Hardware and application spec registry (paper Tables 4 and 5).

This module is the single source of truth for per-platform hardware
constants (clocks, peak TFLOPS, TDP, memory capacities).  The baseline
serving models in :mod:`repro.baselines` and the harness tables both read
from :data:`PLATFORMS`; nothing else should hard-code these numbers.

It deliberately lives at the package top level (not under
``repro.harness``) so low-level modules can import it without pulling in
the table/figure harness.  ``repro.harness.platforms`` re-exports it for
backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PlatformSpec",
    "PLATFORMS",
    "platform",
    "ELECTRICITY_USD_PER_KWH",
    "AMORTIZATION_YEARS",
    "device_usd_per_hour",
    "tdp_of",
]

#: Industrial electricity price used by the TCO model (US average-ish;
#: a modeling constant, not a paper number).
ELECTRICITY_USD_PER_KWH = 0.12

#: Capital cost of a device is amortized linearly over this horizon.
AMORTIZATION_YEARS = 3.0

_HOURS_PER_YEAR = 365.0 * 24.0


@dataclass(frozen=True)
class PlatformSpec:
    """One column of Tables 4 + 5.

    ``None`` marks entries the paper leaves blank (e.g. CPU TFLOPS).
    """

    key: str
    display_name: str
    max_clock_ghz: float
    achieved_clock_ghz: float
    onchip_memory_mb: float
    onchip_memory_kind: str
    peak_tflops_32bit: float | None
    peak_tflops_8bit: float | None
    technology_nm: int
    die_area_mm2: float
    tdp_w: float
    software_framework: str
    precision: str
    measured_peak_power_w: float | None = None
    #: Street price of one device, used only by the TCO model (a
    #: modeling constant — the paper reports no prices).  ``None`` means
    #: "unknown": amortization contributes zero for such platforms.
    device_cost_usd: float | None = None

    @property
    def power_w(self) -> float:
        """Power draw the energy model charges: measured peak when the
        paper reports one, TDP otherwise."""
        if self.measured_peak_power_w is not None:
            return self.measured_peak_power_w
        return self.tdp_w


PLATFORMS: dict[str, PlatformSpec] = {
    "cpu": PlatformSpec(
        key="cpu",
        display_name="Intel Xeon Skylake (dual core)",
        max_clock_ghz=2.8,
        achieved_clock_ghz=2.0,
        onchip_memory_mb=55,
        onchip_memory_kind="L3 cache",
        peak_tflops_32bit=None,
        peak_tflops_8bit=None,
        technology_nm=14,
        die_area_mm2=64.4,
        tdp_w=15,
        software_framework="TF+AVX2",
        precision="f32",
        device_cost_usd=800.0,
    ),
    "gpu": PlatformSpec(
        key="gpu",
        display_name="Tesla V100 SXM2",
        max_clock_ghz=1.53,
        achieved_clock_ghz=1.38,
        onchip_memory_mb=20,
        onchip_memory_kind="register file",
        peak_tflops_32bit=15.7,
        peak_tflops_8bit=None,
        technology_nm=12,
        die_area_mm2=815,
        tdp_w=300,
        software_framework="TF+cuDNN",
        precision="f16",
        device_cost_usd=9000.0,
    ),
    "brainwave": PlatformSpec(
        key="brainwave",
        display_name="Stratix 10 280 FPGA",
        max_clock_ghz=1.0,
        achieved_clock_ghz=0.25,
        onchip_memory_mb=30.5,
        onchip_memory_kind="on-chip scratchpad",
        peak_tflops_32bit=10,
        peak_tflops_8bit=48,
        technology_nm=14,
        die_area_mm2=1200,
        tdp_w=148,
        software_framework="Brainwave",
        precision="blocked precision",
        measured_peak_power_w=125,
        device_cost_usd=8000.0,
    ),
    "plasticine": PlatformSpec(
        key="plasticine",
        display_name="Plasticine",
        max_clock_ghz=1.0,
        achieved_clock_ghz=1.0,
        onchip_memory_mb=31.5,
        onchip_memory_kind="on-chip scratchpad",
        peak_tflops_32bit=12.5,
        peak_tflops_8bit=49,
        technology_nm=28,
        die_area_mm2=494.37,
        tdp_w=160,
        software_framework="Spatial",
        precision="mix f8+16+32",
        device_cost_usd=6000.0,
    ),
}


def platform(key: str) -> PlatformSpec:
    """Look up a platform spec by key (cpu / gpu / brainwave / plasticine)."""
    try:
        return PLATFORMS[key]
    except KeyError:
        raise KeyError(
            f"unknown platform {key!r}; known: {sorted(PLATFORMS)}"
        ) from None


def tdp_of(key: str, default: float = 0.0) -> float:
    """Power draw (W) charged for platform ``key`` by the energy model.

    Unknown keys (platforms registered by tests or downstream code that
    have no Table 4/5 column) fall back to ``default`` so energy totals
    stay well-defined for any fleet.
    """
    spec = PLATFORMS.get(key)
    return default if spec is None else spec.power_w


def device_usd_per_hour(key: str) -> float:
    """Amortized capital cost of one device-hour of platform ``key``.

    Linear amortization of :attr:`PlatformSpec.device_cost_usd` over
    :data:`AMORTIZATION_YEARS`; unknown platforms (or ones with no
    price) cost nothing, leaving only their energy bill.
    """
    spec = PLATFORMS.get(key)
    if spec is None or spec.device_cost_usd is None:
        return 0.0
    return spec.device_cost_usd / (AMORTIZATION_YEARS * _HOURS_PER_YEAR)
