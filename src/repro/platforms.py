"""Hardware and application spec registry (paper Tables 4 and 5).

This module is the single source of truth for per-platform hardware
constants (clocks, peak TFLOPS, TDP, memory capacities).  The baseline
serving models in :mod:`repro.baselines` and the harness tables both read
from :data:`PLATFORMS`; nothing else should hard-code these numbers.

It deliberately lives at the package top level (not under
``repro.harness``) so low-level modules can import it without pulling in
the table/figure harness.  ``repro.harness.platforms`` re-exports it for
backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PlatformSpec", "PLATFORMS", "platform"]


@dataclass(frozen=True)
class PlatformSpec:
    """One column of Tables 4 + 5.

    ``None`` marks entries the paper leaves blank (e.g. CPU TFLOPS).
    """

    key: str
    display_name: str
    max_clock_ghz: float
    achieved_clock_ghz: float
    onchip_memory_mb: float
    onchip_memory_kind: str
    peak_tflops_32bit: float | None
    peak_tflops_8bit: float | None
    technology_nm: int
    die_area_mm2: float
    tdp_w: float
    software_framework: str
    precision: str
    measured_peak_power_w: float | None = None


PLATFORMS: dict[str, PlatformSpec] = {
    "cpu": PlatformSpec(
        key="cpu",
        display_name="Intel Xeon Skylake (dual core)",
        max_clock_ghz=2.8,
        achieved_clock_ghz=2.0,
        onchip_memory_mb=55,
        onchip_memory_kind="L3 cache",
        peak_tflops_32bit=None,
        peak_tflops_8bit=None,
        technology_nm=14,
        die_area_mm2=64.4,
        tdp_w=15,
        software_framework="TF+AVX2",
        precision="f32",
    ),
    "gpu": PlatformSpec(
        key="gpu",
        display_name="Tesla V100 SXM2",
        max_clock_ghz=1.53,
        achieved_clock_ghz=1.38,
        onchip_memory_mb=20,
        onchip_memory_kind="register file",
        peak_tflops_32bit=15.7,
        peak_tflops_8bit=None,
        technology_nm=12,
        die_area_mm2=815,
        tdp_w=300,
        software_framework="TF+cuDNN",
        precision="f16",
    ),
    "brainwave": PlatformSpec(
        key="brainwave",
        display_name="Stratix 10 280 FPGA",
        max_clock_ghz=1.0,
        achieved_clock_ghz=0.25,
        onchip_memory_mb=30.5,
        onchip_memory_kind="on-chip scratchpad",
        peak_tflops_32bit=10,
        peak_tflops_8bit=48,
        technology_nm=14,
        die_area_mm2=1200,
        tdp_w=148,
        software_framework="Brainwave",
        precision="blocked precision",
        measured_peak_power_w=125,
    ),
    "plasticine": PlatformSpec(
        key="plasticine",
        display_name="Plasticine",
        max_clock_ghz=1.0,
        achieved_clock_ghz=1.0,
        onchip_memory_mb=31.5,
        onchip_memory_kind="on-chip scratchpad",
        peak_tflops_32bit=12.5,
        peak_tflops_8bit=49,
        technology_nm=28,
        die_area_mm2=494.37,
        tdp_w=160,
        software_framework="Spatial",
        precision="mix f8+16+32",
    ),
}


def platform(key: str) -> PlatformSpec:
    """Look up a platform spec by key (cpu / gpu / brainwave / plasticine)."""
    try:
        return PLATFORMS[key]
    except KeyError:
        raise KeyError(
            f"unknown platform {key!r}; known: {sorted(PLATFORMS)}"
        ) from None
