"""Figures 1-3: intermediate memory footprint of LSTM implementations.

The paper's core memory argument: BLAS-based cells materialize
``O(H)``-sized intermediate vectors between kernels, while the loop-based
design keeps every intermediate in pipeline registers (``O(1)`` scalars
per parallel lane).  These functions compute the named per-step buffers of
each implementation so the argument can be reproduced quantitatively for
any ``H``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = [
    "FootprintReport",
    "basic_lstm_footprint",
    "cudnn_lstm_footprint",
    "brainwave_footprint",
    "loop_based_footprint",
]


@dataclass(frozen=True)
class FootprintReport:
    """Per-step intermediate storage of one implementation.

    ``buffers`` maps buffer name to element count; ``element_bytes`` is
    the storage precision.  Weights and persistent state (``c``, ``h``)
    are excluded — the comparison is about *intermediates*.
    """

    implementation: str
    buffers: dict[str, int] = field(repr=False)
    element_bytes: int = 4

    @property
    def total_elements(self) -> int:
        return sum(self.buffers.values())

    @property
    def total_bytes(self) -> int:
        return self.total_elements * self.element_bytes

    def largest(self) -> tuple[str, int]:
        name = max(self.buffers, key=lambda k: self.buffers[k])
        return name, self.buffers[name]


def _check_dims(h: int, d: int) -> None:
    if h < 1 or d < 1:
        raise ConfigError(f"dimensions must be >= 1: H={h}, D={d}")


def basic_lstm_footprint(h: int, d: int | None = None) -> FootprintReport:
    """TensorFlow BasicLSTM (Figure 1a): every kernel boundary
    materializes its output in memory."""
    d = h if d is None else d
    _check_dims(h, d)
    r = h + d
    return FootprintReport(
        implementation="basic-lstm",
        buffers={
            "concat_xh": r,  # [x, h_{t-1}] materialized for the MVM
            "mvm_out": 4 * h,  # [i|j|f|o] pre-activations from one GEMM
            "bias_out": 4 * h,  # after the bias add kernel
            "i": h, "j": h, "f": h, "o": h,  # gate activations
            "f_mul_c": h, "i_mul_j": h,  # Hadamard products of Eq. 5
            "tanh_c": h,  # Eq. 6 intermediate
        },
    )


def cudnn_lstm_footprint(h: int, d: int | None = None) -> FootprintReport:
    """CudnnLSTM (Figure 1b): all vector-vector ops after the MVMs are
    fused, but an H-sized buffer per gate remains between the MVM kernel
    and the fused element-wise kernel."""
    d = h if d is None else d
    _check_dims(h, d)
    return FootprintReport(
        implementation="cudnn-lstm",
        buffers={f"gate_preact_{g}": h for g in "ijfo"},
        element_bytes=2,  # fp16 on the GPU
    )


def brainwave_footprint(h: int, d: int | None = None, hv: int = 400, ru: int = 6) -> FootprintReport:
    """Brainwave (Figure 2): intermediates are hv-sized vector chunks —
    much smaller than H, but replicated across the ru tile engines
    ("with parallelization in ru, BW allocates lots of vectorized
    intermediate buffers")."""
    d = h if d is None else d
    _check_dims(h, d)
    return FootprintReport(
        implementation="brainwave",
        buffers={
            "tile_partials": ru * hv,  # per-tile-engine partial sums
            "accum_chunk": hv,  # pipelined reduction output
            "mfu_chunk": hv,  # element-wise working chunk
        },
        element_bytes=2,  # 16-bit post-MVM precision
    )


def loop_based_footprint(
    h: int,
    d: int | None = None,
    hu: int = 4,
    ru: int = 8,
    gates: int = 4,
) -> FootprintReport:
    """The loop-based design (Figure 3): intermediates are scalars in
    pipeline registers — per parallel LSTM-1 lane, one partial sum per
    MapReduce unit and a handful of element-wise live values.  The total
    is independent of H."""
    d = h if d is None else d
    _check_dims(h, d)
    return FootprintReport(
        implementation="loop-based",
        buffers={
            "dot_partials": hu * gates * ru,  # per-unit reduction scalars
            "gate_scalars": hu * gates,  # i, j, f, o for the live element
            "cell_scalars": hu * 2,  # cNew and tanh(cNew)
        },
        element_bytes=4,  # accumulation precision
    )
