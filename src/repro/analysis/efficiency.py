"""The abstract's headline efficiency claims, quantified.

"We demonstrate that this implementation provides a geometric speedup of
30x in performance, 1.6x in area, and 2x in power efficiency compared to
a Tesla V100 GPU, and a geometric speedup of 2x compared to Microsoft
Brainwave implementation on a Stratix 10 FPGA."

* performance — geometric-mean latency speedup over the Table 6 suite;
* area — die-area ratio (815 mm² V100 vs 494.37 mm² Plasticine at 28 nm);
* power efficiency — design-power ratio (300 W TDP vs 160 W), with the
  sharper per-task energy-per-inference ratio also reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.platforms import platform
from repro.harness.report import format_table, geometric_mean

__all__ = ["ClaimCheck", "EfficiencyReport", "abstract_claims", "energy_per_inference_j"]


def energy_per_inference_j(latency_s: float, power_w: float) -> float:
    """Energy of one served sequence (J) from average power."""
    return latency_s * power_w


@dataclass(frozen=True)
class ClaimCheck:
    """One abstract claim vs our measurement.

    ``direction`` selects the pass criterion: ``"approx"`` claims must
    reproduce the published factor (within a 2x shape band); ``"at_least"``
    claims are lower bounds (exceeding them strengthens the claim).
    """

    claim: str
    paper_value: float
    measured: float
    direction: str = "approx"

    @property
    def holds(self) -> bool:
        ratio = self.measured / self.paper_value
        if self.direction == "at_least":
            return ratio >= 0.5
        return 0.5 <= ratio <= 2.0


@dataclass(frozen=True)
class EfficiencyReport:
    checks: tuple[ClaimCheck, ...]
    text: str = field(default="")

    def all_hold(self) -> bool:
        return all(c.holds for c in self.checks)


def abstract_claims(table6_result=None) -> EfficiencyReport:
    """Evaluate every quantitative claim in the paper's abstract.

    Args:
        table6_result: A prebuilt :func:`repro.harness.tables.table6`
            result to reuse (built fresh otherwise — a few seconds).
    """
    if table6_result is None:
        from repro.harness.tables import table6

        table6_result = table6()

    geo = table6_result.geomean_speedups
    pl, gpu = platform("plasticine"), platform("gpu")

    # Per-task energy ratio vs the V100 (V100 at TDP, Plasticine at its
    # simulated activity power).
    energy_ratios = []
    for per in table6_result.results.values():
        e_gpu = energy_per_inference_j(per["gpu"].latency_s, gpu.tdp_w)
        e_pl = energy_per_inference_j(
            per["plasticine"].latency_s, per["plasticine"].power_w
        )
        energy_ratios.append(e_gpu / e_pl)

    checks = (
        ClaimCheck("geomean speedup vs V100 (30x)", 30.0, geo["gpu"]),
        ClaimCheck("geomean speedup vs Brainwave (2x)", 2.0, geo["brainwave"]),
        ClaimCheck("geomean speedup vs CPU (2529x)", 2529.3, geo["cpu"]),
        ClaimCheck("area advantage vs V100 (1.6x)", 1.6, gpu.die_area_mm2 / pl.die_area_mm2),
        ClaimCheck("power-efficiency vs V100 (2x, TDP)", 2.0, gpu.tdp_w / pl.tdp_w),
        ClaimCheck(
            "energy per inference vs V100 (geomean)",
            30.0 * 2.0,  # implied lower bound: 30x faster at half the power
            geometric_mean(energy_ratios),
            direction="at_least",
        ),
    )
    rows = [
        [c.claim, c.paper_value, round(c.measured, 2), "yes" if c.holds else "NO"]
        for c in checks
    ]
    text = format_table(
        ["claim", "paper", "measured", "holds"],
        rows,
        title="Abstract claims: paper vs this reproduction",
    )
    return EfficiencyReport(checks=checks, text=text)
