"""Figure 4: fragmentation in MVM-based vs loop-based designs.

An MVM-tiled design (Brainwave) pads *both* matrix dimensions to tile
boundaries: an ``H x R`` MVM occupies ``ceil(H/hv)*hv`` rows and
``ceil(R/(rv*ru))*rv*ru`` columns of compute — 2-D fragmentation
(Figure 4a).  The loop-based design computes dot products (``hv = 1``),
so only the reduction dimension pads to the vector block — 1-D
fragmentation (Figure 4b).  Utilization is useful FLOPs over occupied
FLOP slots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = [
    "mvm_tile_utilization",
    "loop_utilization",
    "utilization_sweep",
    "UtilizationPoint",
]


def _check(name: str, value: int) -> None:
    if value < 1:
        raise ConfigError(f"{name} must be >= 1, got {value}")


def mvm_tile_utilization(h: int, r: int, hv: int, rv: int, ru: int = 1) -> float:
    """Compute utilization of a tiled MVM design (Figure 4a).

    Args:
        h: Output (non-reduction) dimension.
        r: Reduction dimension.
        hv: Tile's native output dimension (Brainwave: 400).
        rv: Lanes per dot-product engine (Brainwave: 40).
        ru: Parallel tile engines (Brainwave: 6).
    """
    for name, v in [("h", h), ("r", r), ("hv", hv), ("rv", rv), ("ru", ru)]:
        _check(name, v)
    rows = -(-h // hv) * hv
    cols = -(-r // (rv * ru)) * rv * ru
    return (h * r) / (rows * cols)


def loop_utilization(h: int, r: int, rv: int, ru: int = 1, hu: int = 1) -> float:
    """Compute utilization of the loop-based design (Figure 4b).

    Only the reduction dimension fragments against the ``rv`` vector
    block (and the ``ru`` unroll); the output dimension pads only to the
    ``hu`` unroll, which is small and divides typical sizes.
    """
    for name, v in [("h", h), ("r", r), ("rv", rv), ("ru", ru), ("hu", hu)]:
        _check(name, v)
    cols = -(-(-(-r // rv)) // ru) * ru * rv  # ceil(ceil(r/rv)/ru) * ru * rv
    rows = -(-h // hu) * hu
    return (h * r) / (rows * cols)


@dataclass(frozen=True)
class UtilizationPoint:
    """One point of the Figure 4 sweep."""

    h: int
    r: int
    mvm_utilization: float
    loop_utilization: float

    @property
    def advantage(self) -> float:
        """Loop-based over MVM-based utilization ratio (>= 1 expected)."""
        return self.loop_utilization / self.mvm_utilization


def utilization_sweep(
    sizes: list[int] | None = None,
    *,
    bw_hv: int = 400,
    bw_rv: int = 40,
    bw_ru: int = 6,
    loop_rv: int = 64,
    loop_ru: int = 8,
    loop_hu: int = 4,
) -> list[UtilizationPoint]:
    """Sweep H (with R = 2H, the DeepBench shape) comparing both designs
    at their published configurations."""
    sizes = sizes or [256, 512, 1024, 1536, 2048, 2560, 2816]
    points = []
    for h in sizes:
        r = 2 * h
        points.append(
            UtilizationPoint(
                h=h,
                r=r,
                mvm_utilization=mvm_tile_utilization(h, r, bw_hv, bw_rv, bw_ru),
                loop_utilization=loop_utilization(h, r, loop_rv, loop_ru, loop_hu),
            )
        )
    return points
