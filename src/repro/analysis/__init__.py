"""Computation/memory-layout analyses from Section 3 of the paper.

* :mod:`repro.analysis.fragmentation` — Figure 4: utilization loss from
  2-D tile fragmentation (MVM designs) vs 1-D fragmentation (loop-based).
* :mod:`repro.analysis.footprint` — Figures 1-3: per-step intermediate
  buffer footprints and traffic of BasicLSTM, cuDNN, Brainwave, and the
  loop-based design.
* :mod:`repro.analysis.utilization` — effective-FLOPS utilization
  accounting across platforms.
"""

from repro.analysis.fragmentation import (
    loop_utilization,
    mvm_tile_utilization,
    utilization_sweep,
)
from repro.analysis.footprint import (
    FootprintReport,
    basic_lstm_footprint,
    brainwave_footprint,
    cudnn_lstm_footprint,
    loop_based_footprint,
)
from repro.analysis.utilization import flops_utilization, utilization_table

__all__ = [
    "mvm_tile_utilization",
    "loop_utilization",
    "utilization_sweep",
    "FootprintReport",
    "basic_lstm_footprint",
    "cudnn_lstm_footprint",
    "brainwave_footprint",
    "loop_based_footprint",
    "flops_utilization",
    "utilization_table",
]
