"""Effective-FLOPS utilization accounting across serving platforms.

Section 5's framing: "our implementation delivers consistently high FLOPS
utilization across tasks of various sizes" — utilization being effective
TFLOPS over the platform's peak at its serving precision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["flops_utilization", "UtilizationRow", "utilization_table"]


def flops_utilization(effective_tflops: float, peak_tflops: float) -> float:
    """Fraction of peak FLOPS actually delivered."""
    if peak_tflops <= 0:
        raise ConfigError("peak_tflops must be positive")
    if effective_tflops < 0:
        raise ConfigError("effective_tflops must be >= 0")
    return effective_tflops / peak_tflops


@dataclass(frozen=True)
class UtilizationRow:
    """One (task, platform) utilization entry."""

    task_name: str
    platform: str
    effective_tflops: float
    peak_tflops: float

    @property
    def utilization(self) -> float:
        return flops_utilization(self.effective_tflops, self.peak_tflops)


#: Serving-precision peak TFLOPS per platform (Table 4: fp32 for CPU,
#: fp16 ~ 2x fp32 for V100, 8-bit for the spatial architectures).
PLATFORM_PEAKS = {
    "cpu": 0.128,
    "gpu": 31.4,
    "brainwave": 48.0,
    "plasticine": 49.0,
}


def utilization_table(results) -> list[UtilizationRow]:
    """Build utilization rows from :class:`~repro.api.ServingResult`s."""
    rows = []
    for res in results:
        peak = PLATFORM_PEAKS.get(res.platform)
        if peak is None:
            raise ConfigError(f"unknown platform {res.platform!r}")
        rows.append(
            UtilizationRow(
                task_name=res.task.name,
                platform=res.platform,
                effective_tflops=res.effective_tflops,
                peak_tflops=peak,
            )
        )
    return rows
