"""High-level serving API: one call per platform, uniform results.

These functions produce the quantities Table 6 reports — latency,
effective TFLOPS, speedups and (for Plasticine) simulated power — from a
:class:`~repro.workloads.deepbench.RNNTask`.

Example::

    from repro import serve_on_plasticine, serve_on_gpu
    from repro.workloads import deepbench

    task = deepbench.task("lstm", 1024, 25)
    plasticine = serve_on_plasticine(task)
    gpu = serve_on_gpu(task)
    print(gpu.latency_ms / plasticine.latency_ms)  # the speedup column
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.brainwave import BrainwaveServingModel
from repro.baselines.cpu import CPUServingModel
from repro.baselines.gpu import GPUServingModel
from repro.dse.search import build_task_program, evaluate
from repro.dse.tuner import paper_params, tune
from repro.mapping.mapper import MappedDesign, map_rnn_program
from repro.plasticine.area_power import ActivityProfile, AreaPowerModel
from repro.plasticine.chip import PlasticineConfig
from repro.plasticine.simulator import SimulationResult, simulate_pipeline
from repro.rnn.lstm_loop import LoopParams
from repro.workloads.deepbench import RNNTask

__all__ = [
    "ServingResult",
    "serve_on_plasticine",
    "serve_on_brainwave",
    "serve_on_cpu",
    "serve_on_gpu",
]


@dataclass(frozen=True)
class ServingResult:
    """Uniform serving outcome across platforms."""

    platform: str
    task: RNNTask
    latency_s: float
    effective_tflops: float
    power_w: float | None = None
    cycles_per_step: int | None = None
    design: MappedDesign | None = field(default=None, repr=False, compare=False)
    simulation: SimulationResult | None = field(default=None, repr=False, compare=False)
    notes: tuple[str, ...] = ()

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    def speedup_over(self, other: "ServingResult") -> float:
        """How much faster *this* platform is than ``other`` (>1 = faster)."""
        return other.latency_s / self.latency_s


def serve_on_plasticine(
    task: RNNTask,
    params: LoopParams | None = None,
    chip: PlasticineConfig | None = None,
    *,
    bits: int = 8,
    use_dse: bool = False,
) -> ServingResult:
    """Map the loop-based design and run the cycle-level simulator.

    Args:
        task: The DeepBench task.
        params: Loop knobs; defaults to the reconstructed paper parameters
            (Table 7) when available, otherwise the DSE optimum.
        chip: Target chip (default: Table 3's RNN-serving variant).
        bits: Weight/multiply precision.
        use_dse: Force DSE selection even when paper parameters exist.
    """
    chip = chip or PlasticineConfig.rnn_serving()
    if params is None:
        params = None if use_dse else paper_params(task)
        if params is None:
            params = tune(task, chip, bits=bits).best_params

    prog = build_task_program(task, params)
    design = map_rnn_program(prog, chip, bits=bits)
    sim = simulate_pipeline(design.graph)

    latency_s = sim.total_cycles / (chip.clock_ghz * 1e9)
    power_model = AreaPowerModel()
    activity = ActivityProfile(
        pcu_busy=min(sim.average_busy_units(design.graph, "pcu"), chip.n_pcu),
        pmu_busy=min(sim.average_busy_units(design.graph, "pmu"), chip.n_pmu),
    )
    notes = list(design.resources.notes)
    if not design.resources.fits_capacity:
        notes.append(
            f"weights exceed on-chip capacity "
            f"({design.resources.bytes_used / 2**20:.1f} MB > "
            f"{design.resources.onchip_bytes / 2**20:.1f} MB)"
        )
    return ServingResult(
        platform="plasticine",
        task=task,
        latency_s=latency_s,
        effective_tflops=task.effective_tflops(latency_s),
        power_w=power_model.power_w(chip, activity),
        cycles_per_step=sim.cycles_per_step + sim.step_overhead,
        design=design,
        simulation=sim,
        notes=tuple(notes),
    )


def serve_on_brainwave(
    task: RNNTask, model: BrainwaveServingModel | None = None
) -> ServingResult:
    """Run the Brainwave instruction-level model."""
    model = model or BrainwaveServingModel()
    latency_s = model.latency_seconds(task)
    trace = model.step_trace(task)
    return ServingResult(
        platform="brainwave",
        task=task,
        latency_s=latency_s,
        effective_tflops=model.effective_tflops(task),
        cycles_per_step=trace.step_cycles,
        notes=(f"{trace.mvm_instructions} MVM + {trace.mfu_instructions} MFU instrs/step",),
    )


def serve_on_cpu(task: RNNTask, model: CPUServingModel | None = None) -> ServingResult:
    """Run the Xeon Skylake / TensorFlow model."""
    model = model or CPUServingModel()
    latency_s = model.latency_seconds(task)
    return ServingResult(
        platform="cpu",
        task=task,
        latency_s=latency_s,
        effective_tflops=model.effective_tflops(task),
    )


def serve_on_gpu(task: RNNTask, model: GPUServingModel | None = None) -> ServingResult:
    """Run the Tesla V100 / cuDNN model."""
    model = model or GPUServingModel()
    latency_s = model.latency_seconds(task)
    return ServingResult(
        platform="gpu",
        task=task,
        latency_s=latency_s,
        effective_tflops=model.effective_tflops(task),
    )
