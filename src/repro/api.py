"""Legacy one-shot serving API, now thin wrappers over the engine.

.. deprecated::
    New code should use :mod:`repro.serving` — build a
    :class:`~repro.serving.ServingEngine` (or a
    :class:`~repro.serving.Fleet`) so the expensive compile phase runs
    once per task instead of on every call.  These wrappers remain for
    backwards compatibility and produce numerically identical results;
    each one instantiates the registered platform, prepares the task,
    and serves it exactly once.

One-shot (this module)::

    from repro import serve_on_plasticine
    from repro.workloads import deepbench

    task = deepbench.task("lstm", 1024, 25)
    result = serve_on_plasticine(task)          # re-compiles every call
    print(result.latency_ms, result.effective_tflops)

Compile-once sessions (preferred)::

    from repro.serving import ServingEngine

    engine = ServingEngine("plasticine")
    result = engine.serve(task).result          # compiles
    result = engine.serve(task).result          # cache hit: no re-mapping
"""

from __future__ import annotations

from repro.baselines.brainwave import BrainwaveServingModel
from repro.baselines.cpu import CPUServingModel
from repro.baselines.gpu import GPUServingModel
from repro.plasticine.chip import PlasticineConfig
from repro.rnn.lstm_loop import LoopParams
from repro.serving.platforms import (
    BrainwavePlatform,
    CPUPlatform,
    GPUPlatform,
    PlasticinePlatform,
)
from repro.serving.result import ServingResult
from repro.workloads.deepbench import RNNTask

__all__ = [
    "ServingResult",
    "serve_on_plasticine",
    "serve_on_brainwave",
    "serve_on_cpu",
    "serve_on_gpu",
]


def serve_on_plasticine(
    task: RNNTask,
    params: LoopParams | None = None,
    chip: PlasticineConfig | None = None,
    *,
    bits: int = 8,
    use_dse: bool = False,
) -> ServingResult:
    """Map the loop-based design and run the cycle-level simulator.

    .. deprecated:: use ``ServingEngine("plasticine")`` to amortize the
        mapping and simulation across repeated serves.

    Args:
        task: The DeepBench task.
        params: Loop knobs; defaults to the reconstructed paper parameters
            (Table 7) when available, otherwise the DSE optimum.
        chip: Target chip (default: Table 3's RNN-serving variant).
        bits: Weight/multiply precision.
        use_dse: Force DSE selection even when paper parameters exist.

    Example::

        >>> from repro import serve_on_plasticine
        >>> from repro.workloads import deepbench
        >>> res = serve_on_plasticine(deepbench.task("lstm", 512, 25))
        >>> res.platform, res.latency_ms < 5.0
        ('plasticine', True)
    """
    platform = PlasticinePlatform(chip, params=params, bits=bits, use_dse=use_dse)
    return platform.serve_task(task)


def serve_on_brainwave(
    task: RNNTask, model: BrainwaveServingModel | None = None
) -> ServingResult:
    """Run the Brainwave instruction-level model.

    .. deprecated:: use ``ServingEngine("brainwave")``.

    Example::

        >>> from repro import serve_on_brainwave
        >>> from repro.workloads import deepbench
        >>> serve_on_brainwave(deepbench.task("lstm", 512, 25)).platform
        'brainwave'
    """
    return BrainwavePlatform(model).serve_task(task)


def serve_on_cpu(task: RNNTask, model: CPUServingModel | None = None) -> ServingResult:
    """Run the Xeon Skylake / TensorFlow model.

    .. deprecated:: use ``ServingEngine("cpu")``.

    Example::

        >>> from repro import serve_on_cpu
        >>> from repro.workloads import deepbench
        >>> serve_on_cpu(deepbench.task("lstm", 512, 25)).platform
        'cpu'
    """
    return CPUPlatform(model).serve_task(task)


def serve_on_gpu(task: RNNTask, model: GPUServingModel | None = None) -> ServingResult:
    """Run the Tesla V100 / cuDNN model.

    .. deprecated:: use ``ServingEngine("gpu")``.

    Example::

        >>> from repro import serve_on_gpu
        >>> from repro.workloads import deepbench
        >>> serve_on_gpu(deepbench.task("lstm", 512, 25)).platform
        'gpu'
    """
    return GPUPlatform(model).serve_task(task)
