"""The paper's loop-based LSTM (Figure 5), in the Spatial-like DSL.

Every element of ``c_t``/``h_t`` is produced by one *LSTM-1* body: four
fused dot-product + bias + LUT evaluations (one per gate), followed by the
element-wise cell update — all intermediates living in registers.  The
design knobs are exactly Figure 5's:

* ``rv`` — vectorization of the tiled dot product's inner loop,
* ``ru`` — number of parallel MapReduce units per gate,
* ``hu`` — unrolling of the outer ``Foreach(H par hu)`` loop.

The time-step loop is ``Sequential`` because of the ``h_t`` feedback.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.precision.formats import FloatFormat
from repro.rnn.luts import DEFAULT_LUT_ENTRIES, DEFAULT_LUT_RANGE, sigmoid, tanh
from repro.rnn.params import LSTMWeights
from repro.spatial import Foreach, Program, Range, Reduce, Sequential

__all__ = ["LoopParams", "build_lstm_program"]


@dataclass(frozen=True)
class LoopParams:
    """The design parameters of Table 7 for the loop-based cells."""

    hu: int = 1  # unrolling of the H loop
    ru: int = 1  # parallel MapReduce units on the R dimension
    rv: int = 16  # dot-product vectorization (lanes x packing)
    hv: int = 1  # native output-tile dimension; loop-based designs use 1

    def __post_init__(self) -> None:
        for name in ("hu", "ru", "rv", "hv"):
            if getattr(self, name) < 1:
                raise ConfigError(f"LoopParams.{name} must be >= 1")
        if self.hv != 1:
            raise ConfigError(
                "the loop-based design computes dot products (hv == 1); "
                "hv > 1 belongs to the tiled-MVM (Brainwave) design"
            )


def build_lstm_program(
    weights: LSTMWeights,
    xs: np.ndarray,
    params: LoopParams = LoopParams(),
    *,
    weight_dtype: FloatFormat | None = None,
    state_dtype: FloatFormat | None = None,
    lut_dtype: FloatFormat | None = None,
    lut_entries: int = DEFAULT_LUT_ENTRIES,
) -> Program:
    """Build the Figure 5 program for a full input sequence.

    Args:
        weights: Concatenated-layout LSTM parameters.
        xs: Input sequence, shape ``(T, D)``.
        params: ``hu``/``ru``/``rv`` loop knobs.
        weight_dtype: Storage format of the weight SRAMs (e.g. FP8).
        state_dtype: Storage format of the ``xh``/``c`` state SRAMs.
        lut_dtype: Storage format of the non-linear tables.
        lut_entries: Table resolution.

    Returns:
        A :class:`Program` whose ``y_seq`` SRAM holds every step's output
        after :meth:`Program.run`.
    """
    shape = weights.shape
    xs = np.asarray(xs, dtype=np.float64)
    if xs.ndim != 2 or xs.shape[1] != shape.input_dim:
        raise ConfigError(f"xs must be (T, {shape.input_dim}), got {xs.shape}")
    n_steps = xs.shape[0]
    H, D, R = shape.hidden, shape.input_dim, shape.concat_dim
    # Pad the reduction dimension to a whole number of rv-blocks: the last
    # vector block reads past R (the paper's 1-D fragmentation, Figure 4b);
    # zero padding makes the garbage lanes contribute nothing.
    r_pad = -(-R // params.rv) * params.rv

    prog = Program(f"lstm_h{H}_t{n_steps}")
    lo, hi = DEFAULT_LUT_RANGE

    c = prog.sram("c", (H,), dtype=state_dtype)
    xh = prog.sram("xh", (r_pad,), dtype=state_dtype)
    x_seq = prog.sram("x_seq", (n_steps, D), dtype=state_dtype)
    y_seq = prog.sram("y_seq", (n_steps, H), dtype=state_dtype)
    w = {g: prog.sram(f"w{g}", (H, r_pad), dtype=weight_dtype) for g in shape.gate_names}
    b = {g: prog.sram(f"b{g}", (H,), dtype=weight_dtype) for g in shape.gate_names}
    luts = {
        g: prog.lut(
            f"lut{g}",
            tanh if g == "j" else sigmoid,
            lo=lo,
            hi=hi,
            entries=lut_entries,
            dtype=lut_dtype,
        )
        for g in shape.gate_names
    }
    lut_tanh = prog.lut("tanh", tanh, lo=lo, hi=hi, entries=lut_entries, dtype=lut_dtype)

    for g in shape.gate_names:
        w_padded = np.zeros((H, r_pad))
        w_padded[:, :R] = weights.w[g]
        prog.set_data(f"w{g}", w_padded)
        prog.set_data(f"b{g}", weights.b[g])
    prog.set_data("x_seq", xs)

    def step_body(t):
        # Stream x_t into the head of the concatenated [x, h] SRAM.
        Foreach(
            Range(D, par=params.rv),
            lambda i: xh.write(x_seq[t, i], i),
            label="load_x",
        )

        def lstm1(ih):
            def fused_dot_with_nonlinear(wg, lut, bg):
                # Tiled dot product: blocking rv, ru parallel MapReduce units.
                def block(iu):
                    return Reduce(
                        Range(params.rv, par=params.rv),
                        lambda iv: wg[ih, iu + iv] * xh[iu + iv],
                        label="map_reduce",
                    )

                elem = (
                    Reduce(Range(R, step=params.rv, par=params.ru), block, label="dot")
                    + bg[ih]
                )
                return lut(elem)

            i = fused_dot_with_nonlinear(w["i"], luts["i"], b["i"])
            j = fused_dot_with_nonlinear(w["j"], luts["j"], b["j"])
            f = fused_dot_with_nonlinear(w["f"], luts["f"], b["f"])
            o = fused_dot_with_nonlinear(w["o"], luts["o"], b["o"])
            c_new = i * j + c[ih] * f
            c.write(c_new, ih)
            h_new = lut_tanh(c_new) * o
            xh.write(h_new, ih + D)
            y_seq.write(h_new, t, ih)

        Foreach(Range(H, par=params.hu), lstm1, label="lstm1")

    @prog.main
    def main():
        Sequential.Foreach(Range(n_steps), step_body, label="steps")

    return prog
