"""Lookup-table non-linearities (Figure 5's ``luti``/``lutj``/``tanh``).

The paper evaluates gate non-linearities through on-chip lookup tables fed
by the dot-product result.  This module centralizes the table
configuration and its worst-case error bound so tests and accuracy studies
agree on tolerances.
"""

from __future__ import annotations

import numpy as np

from repro.rnn.reference import sigmoid

__all__ = [
    "DEFAULT_LUT_RANGE",
    "DEFAULT_LUT_ENTRIES",
    "lut_error_bound",
    "sigmoid",
    "tanh",
]

#: Input clamp range for sigmoid/tanh tables.  Outside ±8 both functions
#: are within 3.4e-4 of their asymptotes.
DEFAULT_LUT_RANGE: tuple[float, float] = (-8.0, 8.0)

#: Table entries per function; 8192 entries over [-8, 8] give a nearest-
#: entry error below 5e-4 for sigmoid/tanh (both have |f'| <= 1).
DEFAULT_LUT_ENTRIES: int = 8192


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent (numpy's, wrapped for symmetry with sigmoid)."""
    return np.tanh(np.asarray(x, dtype=np.float64))


def lut_error_bound(
    max_abs_derivative: float,
    lo: float = DEFAULT_LUT_RANGE[0],
    hi: float = DEFAULT_LUT_RANGE[1],
    entries: int = DEFAULT_LUT_ENTRIES,
    tail_error: float = 3.4e-4,
) -> float:
    """Worst-case absolute error of a nearest-entry LUT.

    In-range error is half a grid step times the max slope; out-of-range
    inputs clamp, adding the function's distance to its asymptote
    (``tail_error``).
    """
    step = (hi - lo) / (entries - 1)
    return 0.5 * step * max_abs_derivative + tail_error
