"""Loop-based GRU in the Spatial-like DSL.

Section 2 of the paper: "our optimization techniques can be generalized to
any other types of RNN cells", with GRU evaluated in Section 5.  The GRU
analogue of LSTM-1 produces one element of ``h_t`` per iteration:

* update/reset gates ``z``/``r`` are fused dot products + sigmoid LUTs,
* the candidate uses the cuDNN ``linear_before_reset`` form, so the reset
  gate scales the *hidden-part dot product* of the same iteration —
  keeping the whole cell a single fused pass with scalar intermediates.

Unlike the LSTM, the candidate's x-part and h-part cannot be concatenated
(the reset scaling splits them), so each gate computes its x-part and
h-part reductions back-to-back on the same MapReduce units.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.precision.formats import FloatFormat
from repro.rnn.luts import DEFAULT_LUT_ENTRIES, DEFAULT_LUT_RANGE, sigmoid, tanh
from repro.rnn.lstm_loop import LoopParams
from repro.rnn.params import GRUWeights
from repro.spatial import Foreach, Program, Range, Reduce, Sequential

__all__ = ["build_gru_program"]


def build_gru_program(
    weights: GRUWeights,
    xs: np.ndarray,
    params: LoopParams = LoopParams(),
    *,
    weight_dtype: FloatFormat | None = None,
    state_dtype: FloatFormat | None = None,
    lut_dtype: FloatFormat | None = None,
    lut_entries: int = DEFAULT_LUT_ENTRIES,
) -> Program:
    """Build the loop-based GRU program for a full input sequence.

    Mirrors :func:`repro.rnn.lstm_loop.build_lstm_program`; outputs land in
    the ``y_seq`` SRAM.
    """
    shape = weights.shape
    xs = np.asarray(xs, dtype=np.float64)
    if xs.ndim != 2 or xs.shape[1] != shape.input_dim:
        raise ConfigError(f"xs must be (T, {shape.input_dim}), got {xs.shape}")
    n_steps = xs.shape[0]
    H, D = shape.hidden, shape.input_dim
    d_pad = -(-D // params.rv) * params.rv
    h_pad = -(-H // params.rv) * params.rv

    prog = Program(f"gru_h{H}_t{n_steps}")
    lo, hi = DEFAULT_LUT_RANGE

    x_cur = prog.sram("x_cur", (d_pad,), dtype=state_dtype)
    h_cur = prog.sram("h_cur", (h_pad,), dtype=state_dtype)
    x_seq = prog.sram("x_seq", (n_steps, D), dtype=state_dtype)
    y_seq = prog.sram("y_seq", (n_steps, H), dtype=state_dtype)
    wx = {g: prog.sram(f"w{g}x", (H, d_pad), dtype=weight_dtype) for g in shape.gate_names}
    wh = {g: prog.sram(f"w{g}h", (H, h_pad), dtype=weight_dtype) for g in shape.gate_names}
    b = {g: prog.sram(f"b{g}", (H,), dtype=weight_dtype) for g in shape.gate_names}
    lut_sig = prog.lut("sigmoid", sigmoid, lo=lo, hi=hi, entries=lut_entries, dtype=lut_dtype)
    lut_tanh = prog.lut("tanh", tanh, lo=lo, hi=hi, entries=lut_entries, dtype=lut_dtype)

    for g in shape.gate_names:
        wx_p = np.zeros((H, d_pad))
        wx_p[:, :D] = weights.w[g][:, :D]
        wh_p = np.zeros((H, h_pad))
        wh_p[:, :H] = weights.w[g][:, D:]
        prog.set_data(f"w{g}x", wx_p)
        prog.set_data(f"w{g}h", wh_p)
        prog.set_data(f"b{g}", weights.b[g])
    prog.set_data("x_seq", xs)

    def step_body(t):
        Foreach(
            Range(D, par=params.rv),
            lambda i: x_cur.write(x_seq[t, i], i),
            label="load_x",
        )

        def gru1(ih):
            def part_dot(wmat, source, extent, label):
                def block(iu):
                    return Reduce(
                        Range(params.rv, par=params.rv),
                        lambda iv: wmat[ih, iu + iv] * source[iu + iv],
                        label="map_reduce",
                    )

                return Reduce(Range(extent, step=params.rv, par=params.ru), block, label=label)

            def gate_dot(g):
                return (
                    part_dot(wx[g], x_cur, D, f"dot_{g}x"),
                    part_dot(wh[g], h_cur, H, f"dot_{g}h"),
                )

            zx, zh = gate_dot("z")
            rx, rh = gate_dot("r")
            cx, ch = gate_dot("c")
            z = lut_sig(zx + zh + b["z"][ih])
            r = lut_sig(rx + rh + b["r"][ih])
            # linear_before_reset: reset scales the hidden-part dot product.
            cand = lut_tanh(cx + r * ch + b["c"][ih])
            h_new = (1.0 - z) * cand + z * h_cur[ih]
            h_cur.write(h_new, ih)
            y_seq.write(h_new, t, ih)

        Foreach(Range(H, par=params.hu), gru1, label="gru1")

    @prog.main
    def main():
        Sequential.Foreach(Range(n_steps), step_body, label="steps")

    return prog
