"""RNN cells: golden references and loop-based DSL implementations.

* :mod:`repro.rnn.params` — tensor shapes (paper Table 1) and weight
  containers with the concatenated ``[Wx, Wh]`` layout of Figure 5.
* :mod:`repro.rnn.reference` — numpy LSTM/GRU used as functional oracle.
* :mod:`repro.rnn.luts` — sigmoid/tanh lookup-table helpers and error
  bounds.
* :mod:`repro.rnn.lstm_loop` / :mod:`repro.rnn.gru_loop` — the paper's
  loop-based cells written in the Spatial-like DSL, parameterized by the
  design knobs ``hu``, ``ru``, ``rv``.
"""

from repro.rnn.params import GRUWeights, LSTMWeights, RNNShape
from repro.rnn.reference import (
    gru_sequence,
    gru_step,
    lstm_sequence,
    lstm_step,
    sigmoid,
)
from repro.rnn.lstm_loop import build_lstm_program
from repro.rnn.gru_loop import build_gru_program

__all__ = [
    "RNNShape",
    "LSTMWeights",
    "GRUWeights",
    "lstm_step",
    "lstm_sequence",
    "gru_step",
    "gru_sequence",
    "sigmoid",
    "build_lstm_program",
    "build_gru_program",
]
