"""Golden numpy LSTM/GRU implementations (paper Equations 1-6).

These are the functional oracles every other implementation is tested
against.  The non-linearities are injectable so a reference run can share
the exact LUT numerics of a DSL execution (for bit-exact comparison) or
use true ``sigmoid``/``tanh`` (for accuracy studies).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigError
from repro.rnn.params import GRUWeights, LSTMWeights

__all__ = ["sigmoid", "lstm_step", "lstm_sequence", "gru_step", "gru_sequence"]

Nonlin = Callable[[np.ndarray], np.ndarray]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _concat_xh(x: np.ndarray, h: np.ndarray, weights) -> np.ndarray:
    shape = weights.shape
    if x.shape != (shape.input_dim,):
        raise ConfigError(f"x has shape {x.shape}, expected ({shape.input_dim},)")
    if h.shape != (shape.hidden,):
        raise ConfigError(f"h has shape {h.shape}, expected ({shape.hidden},)")
    return np.concatenate([x, h])


def lstm_step(
    weights: LSTMWeights,
    x: np.ndarray,
    h: np.ndarray,
    c: np.ndarray,
    *,
    sigma: Nonlin = sigmoid,
    tanh: Nonlin = np.tanh,
) -> tuple[np.ndarray, np.ndarray]:
    """One LSTM step; returns ``(h_t, c_t)``.

    Implements Equations 1-6 with the concatenated weight layout:
    ``i = σ(W_i [x,h] + b_i)`` etc., ``c_t = f∘c + i∘j``,
    ``h_t = o ∘ tanh(c_t)``.
    """
    xh = _concat_xh(np.asarray(x, float), np.asarray(h, float), weights)
    i = sigma(weights.w["i"] @ xh + weights.b["i"])
    j = tanh(weights.w["j"] @ xh + weights.b["j"])
    f = sigma(weights.w["f"] @ xh + weights.b["f"])
    o = sigma(weights.w["o"] @ xh + weights.b["o"])
    c_new = f * np.asarray(c, float) + i * j
    h_new = o * tanh(c_new)
    return h_new, c_new


def lstm_sequence(
    weights: LSTMWeights,
    xs: np.ndarray,
    h0: np.ndarray | None = None,
    c0: np.ndarray | None = None,
    *,
    sigma: Nonlin = sigmoid,
    tanh: Nonlin = np.tanh,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run ``T`` steps; returns ``(ys, h_T, c_T)`` with ``ys[t] = h_{t+1}``."""
    xs = np.asarray(xs, dtype=np.float64)
    if xs.ndim != 2 or xs.shape[1] != weights.shape.input_dim:
        raise ConfigError(
            f"xs must be (T, {weights.shape.input_dim}), got {xs.shape}"
        )
    hidden = weights.shape.hidden
    h = np.zeros(hidden) if h0 is None else np.asarray(h0, float).copy()
    c = np.zeros(hidden) if c0 is None else np.asarray(c0, float).copy()
    ys = np.empty((xs.shape[0], hidden))
    for t in range(xs.shape[0]):
        h, c = lstm_step(weights, xs[t], h, c, sigma=sigma, tanh=tanh)
        ys[t] = h
    return ys, h, c


def gru_step(
    weights: GRUWeights,
    x: np.ndarray,
    h: np.ndarray,
    *,
    sigma: Nonlin = sigmoid,
    tanh: Nonlin = np.tanh,
) -> np.ndarray:
    """One GRU step (cuDNN ``linear_before_reset`` variant); returns ``h_t``.

    ``z = σ(W_z [x,h] + b_z)``, ``r = σ(W_r [x,h] + b_r)``,
    ``h̃ = tanh(W_cx x + r ∘ (W_ch h) + b_c)``,
    ``h_t = (1 - z) ∘ h̃ + z ∘ h``.
    """
    x = np.asarray(x, float)
    h = np.asarray(h, float)
    xh = _concat_xh(x, h, weights)
    d = weights.shape.input_dim
    z = sigma(weights.w["z"] @ xh + weights.b["z"])
    r = sigma(weights.w["r"] @ xh + weights.b["r"])
    cand = tanh(weights.w["c"][:, :d] @ x + r * (weights.w["c"][:, d:] @ h) + weights.b["c"])
    return (1.0 - z) * cand + z * h


def gru_sequence(
    weights: GRUWeights,
    xs: np.ndarray,
    h0: np.ndarray | None = None,
    *,
    sigma: Nonlin = sigmoid,
    tanh: Nonlin = np.tanh,
) -> tuple[np.ndarray, np.ndarray]:
    """Run ``T`` steps; returns ``(ys, h_T)``."""
    xs = np.asarray(xs, dtype=np.float64)
    if xs.ndim != 2 or xs.shape[1] != weights.shape.input_dim:
        raise ConfigError(f"xs must be (T, {weights.shape.input_dim}), got {xs.shape}")
    h = np.zeros(weights.shape.hidden) if h0 is None else np.asarray(h0, float).copy()
    ys = np.empty((xs.shape[0], weights.shape.hidden))
    for t in range(xs.shape[0]):
        h = gru_step(weights, xs[t], h, sigma=sigma, tanh=tanh)
        ys[t] = h
    return ys, h
