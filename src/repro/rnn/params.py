"""RNN tensor shapes and weight containers (paper Table 1).

The paper concatenates each gate's input and hidden weight matrices into
``[Wx, Wh]`` of shape ``(H, R)`` with ``R = D + H``, so a gate's
pre-activation is one dot product against the concatenated ``[x, h]``
vector.  The containers here store that layout directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

__all__ = ["RNNShape", "LSTMWeights", "GRUWeights", "LSTM_GATES", "GRU_GATES"]

#: LSTM gate order: input, candidate (j), forget, output — Equations 1-4.
LSTM_GATES = ("i", "j", "f", "o")

#: GRU gate order: update (z), reset (r), candidate (c).
GRU_GATES = ("z", "r", "c")


@dataclass(frozen=True)
class RNNShape:
    """Dimensions of one RNN cell instance.

    Attributes:
        kind: ``"lstm"`` or ``"gru"``.
        hidden: Hidden-state dimension ``H``.
        input_dim: Input feature dimension ``D`` (DeepBench uses ``D = H``).
    """

    kind: str
    hidden: int
    input_dim: int

    def __post_init__(self) -> None:
        if self.kind not in ("lstm", "gru"):
            raise ConfigError(f"unknown RNN kind {self.kind!r}")
        if self.hidden <= 0 or self.input_dim <= 0:
            raise ConfigError(
                f"dimensions must be positive: H={self.hidden}, D={self.input_dim}"
            )

    @property
    def gates(self) -> int:
        """Number of gates ``G`` (paper Table 2: LSTM G=4, GRU G=3)."""
        return 4 if self.kind == "lstm" else 3

    @property
    def concat_dim(self) -> int:
        """``R = D + H``, the reduction dimension of every gate MVM."""
        return self.hidden + self.input_dim

    @property
    def weight_count(self) -> int:
        """Total weight elements ``G * H * R`` (biases excluded)."""
        return self.gates * self.hidden * self.concat_dim

    @property
    def gate_names(self) -> tuple[str, ...]:
        return LSTM_GATES if self.kind == "lstm" else GRU_GATES

    def mvm_flops_per_step(self) -> int:
        """MVM FLOPs per time step, the paper's effective-FLOPS numerator
        (``2 * G * H * R``: one multiply + one add per weight)."""
        return 2 * self.weight_count


def _check_gate_arrays(
    shape: RNNShape, w: dict[str, np.ndarray], b: dict[str, np.ndarray]
) -> None:
    expected = set(shape.gate_names)
    if set(w) != expected or set(b) != expected:
        raise ConfigError(
            f"gate dict keys {sorted(w)}/{sorted(b)} do not match {sorted(expected)}"
        )
    for g in shape.gate_names:
        if w[g].shape != (shape.hidden, shape.concat_dim):
            raise ConfigError(
                f"W[{g}] has shape {w[g].shape}, expected "
                f"({shape.hidden}, {shape.concat_dim})"
            )
        if b[g].shape != (shape.hidden,):
            raise ConfigError(f"b[{g}] has shape {b[g].shape}, expected ({shape.hidden},)")


@dataclass
class LSTMWeights:
    """Concatenated-layout LSTM parameters.

    ``w[g][ih, :input_dim]`` is the input weight row, ``w[g][ih, input_dim:]``
    the hidden weight row for output element ``ih`` of gate ``g``.
    """

    shape: RNNShape
    w: dict[str, np.ndarray] = field(repr=False)
    b: dict[str, np.ndarray] = field(repr=False)

    def __post_init__(self) -> None:
        if self.shape.kind != "lstm":
            raise ConfigError(f"LSTMWeights requires an lstm shape, got {self.shape.kind}")
        _check_gate_arrays(self.shape, self.w, self.b)

    @classmethod
    def random(
        cls, shape: RNNShape, rng: np.random.Generator | int = 0, scale: float | None = None
    ) -> "LSTMWeights":
        """Uniform ``[-scale, scale]`` init, default ``1/sqrt(R)`` — keeps
        pre-activations in the LUT range for any H."""
        if isinstance(rng, int):
            rng = np.random.default_rng(rng)
        if scale is None:
            scale = 1.0 / np.sqrt(shape.concat_dim)
        w = {
            g: rng.uniform(-scale, scale, size=(shape.hidden, shape.concat_dim))
            for g in shape.gate_names
        }
        b = {g: rng.uniform(-scale, scale, size=shape.hidden) for g in shape.gate_names}
        return cls(shape=shape, w=w, b=b)


@dataclass
class GRUWeights:
    """Concatenated-layout GRU parameters.

    The candidate gate ``c`` follows the cuDNN/DeepBench
    ``linear_before_reset`` formulation: its hidden-part dot product is
    computed first and scaled by the reset gate *after* the reduction
    (``tanh(Wcx·x + r ∘ (Wch·h) + bc)``), which is what lets the paper's
    loop-based GRU compute all three gates in a single fused pass.
    """

    shape: RNNShape
    w: dict[str, np.ndarray] = field(repr=False)
    b: dict[str, np.ndarray] = field(repr=False)

    def __post_init__(self) -> None:
        if self.shape.kind != "gru":
            raise ConfigError(f"GRUWeights requires a gru shape, got {self.shape.kind}")
        _check_gate_arrays(self.shape, self.w, self.b)

    @classmethod
    def random(
        cls, shape: RNNShape, rng: np.random.Generator | int = 0, scale: float | None = None
    ) -> "GRUWeights":
        if isinstance(rng, int):
            rng = np.random.default_rng(rng)
        if scale is None:
            scale = 1.0 / np.sqrt(shape.concat_dim)
        w = {
            g: rng.uniform(-scale, scale, size=(shape.hidden, shape.concat_dim))
            for g in shape.gate_names
        }
        b = {g: rng.uniform(-scale, scale, size=shape.hidden) for g in shape.gate_names}
        return cls(shape=shape, w=w, b=b)
