"""The DeepBench RNN inference tasks evaluated in the paper (Table 6/7).

Baidu DeepBench's RNN inference suite uses batch size 1 and input feature
dimension equal to the hidden dimension.  The paper evaluates five LSTM
and five GRU points in Table 6; Table 7 (and the Section 5.2 discussion of
"the largest GRU") adds GRU H=2816, which we carry with a flag.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.rnn.params import RNNShape

__all__ = ["RNNTask", "LSTM_TASKS", "GRU_TASKS", "all_tasks", "table6_tasks", "task"]


@dataclass(frozen=True)
class RNNTask:
    """One DeepBench serving task.

    Attributes:
        kind: ``"lstm"`` or ``"gru"``.
        hidden: Hidden units ``H`` (input dim ``D = H`` in DeepBench).
        timesteps: Sequence length ``T``.
        batch: Always 1 for real-time serving.
        in_table6: Whether the paper reports this point in Table 6.
    """

    kind: str
    hidden: int
    timesteps: int
    batch: int = 1
    in_table6: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("lstm", "gru"):
            raise WorkloadError(f"unknown RNN kind {self.kind!r}")
        if self.hidden <= 0 or self.timesteps <= 0 or self.batch <= 0:
            raise WorkloadError(f"invalid task dimensions: {self}")

    @property
    def name(self) -> str:
        return f"{self.kind}-h{self.hidden}-t{self.timesteps}"

    @property
    def shape(self) -> RNNShape:
        return RNNShape(self.kind, self.hidden, self.hidden)

    @property
    def flops(self) -> int:
        """Total MVM FLOPs, the paper's effective-TFLOPS numerator:
        ``T * 2 * G * H * R``."""
        return self.timesteps * self.shape.mvm_flops_per_step()

    def effective_tflops(self, latency_seconds: float) -> float:
        """Effective TFLOPS at a measured latency."""
        if latency_seconds <= 0:
            raise WorkloadError("latency must be positive")
        return self.flops / latency_seconds / 1e12

    def weight_bytes(self, bytes_per_element: float) -> float:
        """Weight footprint at a storage precision."""
        return self.shape.weight_count * bytes_per_element


#: Table 6 LSTM points: (hidden, timesteps).
LSTM_TASKS: tuple[RNNTask, ...] = tuple(
    RNNTask("lstm", h, t)
    for h, t in [(256, 150), (512, 25), (1024, 25), (1536, 50), (2048, 25)]
)

#: Table 6 GRU points plus the Table 7 / Section 5.2 GRU 2816.
GRU_TASKS: tuple[RNNTask, ...] = tuple(
    RNNTask("gru", h, t, in_table6=in6)
    for h, t, in6 in [
        (512, 1, True),
        (1024, 1500, True),
        (1536, 375, True),
        (2048, 375, True),
        (2560, 375, True),
        (2816, 750, False),
    ]
)


def all_tasks() -> tuple[RNNTask, ...]:
    """Every task in the suite (including GRU 2816)."""
    return LSTM_TASKS + GRU_TASKS


def table6_tasks() -> tuple[RNNTask, ...]:
    """The ten points of Table 6."""
    return tuple(t for t in all_tasks() if t.in_table6)


def task(kind: str, hidden: int, timesteps: int | None = None) -> RNNTask:
    """Look up a task by kind and hidden size (timesteps optional if the
    suite has exactly one entry for that size)."""
    matches = [
        t
        for t in all_tasks()
        if t.kind == kind
        and t.hidden == hidden
        and (timesteps is None or t.timesteps == timesteps)
    ]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        if timesteps is not None:
            return RNNTask(kind, hidden, timesteps)
        raise WorkloadError(f"no task {kind} H={hidden} in the suite; pass timesteps")
    raise WorkloadError(f"ambiguous task {kind} H={hidden}: specify timesteps")
