"""The DeepBench RNN inference tasks evaluated in the paper (Table 6/7).

Baidu DeepBench's RNN inference suite uses batch size 1 and input feature
dimension equal to the hidden dimension.  The paper evaluates five LSTM
and five GRU points in Table 6; Table 7 (and the Section 5.2 discussion of
"the largest GRU") adds GRU H=2816, which we carry with a flag.

Beyond the paper's fixed-length single-layer points, :class:`RNNTask`
also describes the workloads real RNN serving sees (see
:mod:`repro.workloads.zoo`):

* **stacked** models (``layers`` > 1): L identical cells run back to
  back per time step, so a request costs ``L`` cell-steps per input
  step and carries ``L`` layers' worth of weights;
* **encoder-decoder / seq2seq** models (``decoder_timesteps`` > 0): the
  encoder consumes ``timesteps`` inputs, then a decoder of the same
  shape emits ``decoder_timesteps`` outputs — one request runs
  ``timesteps + decoder_timesteps`` steps through every layer;
* **per-request sequence lengths**: :meth:`RNNTask.with_timesteps`
  derives a length variant of a task (same weights, different ``T``),
  which is how the traffic generators attach a sampled length to each
  arrival.  Variants of one task share a :attr:`RNNTask.family_key`, the
  compatibility token for length-aware batching and for sharing one
  compiled model across lengths.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import WorkloadError
from repro.rnn.params import RNNShape

__all__ = ["RNNTask", "LSTM_TASKS", "GRU_TASKS", "all_tasks", "table6_tasks", "task"]


@dataclass(frozen=True)
class RNNTask:
    """One RNN serving task.

    Attributes:
        kind: ``"lstm"`` or ``"gru"``.
        hidden: Hidden units ``H`` (input dim ``D = H`` in DeepBench).
        timesteps: Input sequence length ``T`` (the encoder length for
            seq2seq tasks).
        layers: Stacked cell layers ``L`` (keyword-only; DeepBench
            points are single-layer).
        decoder_timesteps: Output steps of the decoder leg for
            encoder-decoder tasks (keyword-only; 0 = plain RNN).
        in_table6: Whether the paper reports this point in Table 6.

    Serving is always batch 1 per request — the paper's scenario.  The
    historical ``batch`` field (always 1, silently ignored) is gone;
    coalesced execution sizes live on
    :class:`~repro.serving.result.ServingResult` instead.
    """

    kind: str
    hidden: int
    timesteps: int
    layers: int = field(default=1, kw_only=True)
    decoder_timesteps: int = field(default=0, kw_only=True)
    in_table6: bool = field(default=True, kw_only=True)

    def __post_init__(self) -> None:
        if self.kind not in ("lstm", "gru"):
            raise WorkloadError(f"unknown RNN kind {self.kind!r}")
        if self.hidden <= 0 or self.timesteps <= 0:
            raise WorkloadError(f"invalid task dimensions: {self}")
        if self.layers < 1:
            raise WorkloadError(f"layers must be >= 1: {self}")
        if self.decoder_timesteps < 0:
            raise WorkloadError(f"decoder_timesteps must be >= 0: {self}")

    @property
    def name(self) -> str:
        base = f"{self.kind}-h{self.hidden}"
        if self.layers > 1:
            base += f"-l{self.layers}"
        base += f"-t{self.timesteps}"
        if self.decoder_timesteps:
            base += f"d{self.decoder_timesteps}"
        return base

    @property
    def shape(self) -> RNNShape:
        """The per-cell tensor shape (identical for every layer: DeepBench
        uses ``D = H``, so layer inputs and hidden states coincide)."""
        return RNNShape(self.kind, self.hidden, self.hidden)

    @property
    def total_steps(self) -> int:
        """Sequential cell evaluations one request runs:
        ``L * (T + T_dec)``.  Every latency model is linear in this."""
        return self.layers * (self.timesteps + self.decoder_timesteps)

    @property
    def family_key(self) -> tuple:
        """Everything about the task except its sequence length.

        Two tasks with equal family keys share weights and compiled
        state and may be padded into one batched execution; they differ
        only in ``timesteps``.
        """
        return (
            self.kind,
            self.hidden,
            self.layers,
            self.decoder_timesteps,
            self.in_table6,
        )

    def with_timesteps(self, timesteps: int) -> "RNNTask":
        """A length variant of this task (same family, different ``T``)."""
        if timesteps == self.timesteps:
            return self
        return replace(self, timesteps=timesteps)

    def padded_to(self, timesteps: int) -> "RNNTask":
        """This task padded (never truncated) to at least ``timesteps``."""
        return self.with_timesteps(max(self.timesteps, timesteps))

    @property
    def flops(self) -> int:
        """Total MVM FLOPs, the paper's effective-TFLOPS numerator:
        ``L * (T + T_dec) * 2 * G * H * R``."""
        return self.total_steps * self.shape.mvm_flops_per_step()

    def effective_tflops(self, latency_seconds: float) -> float:
        """Effective TFLOPS at a measured latency."""
        if latency_seconds <= 0:
            raise WorkloadError("latency must be positive")
        return self.flops / latency_seconds / 1e12

    def weight_bytes(self, bytes_per_element: float) -> float:
        """Total weight footprint at a storage precision (all layers)."""
        return self.layers * self.shape.weight_count * bytes_per_element

    def cell_weight_bytes(self, bytes_per_element: float) -> float:
        """Weight footprint of one cell layer — what one time step
        streams on the weight-streaming baselines."""
        return self.shape.weight_count * bytes_per_element


#: Table 6 LSTM points: (hidden, timesteps).
LSTM_TASKS: tuple[RNNTask, ...] = tuple(
    RNNTask("lstm", h, t)
    for h, t in [(256, 150), (512, 25), (1024, 25), (1536, 50), (2048, 25)]
)

#: Table 6 GRU points plus the Table 7 / Section 5.2 GRU 2816.
GRU_TASKS: tuple[RNNTask, ...] = tuple(
    RNNTask("gru", h, t, in_table6=in6)
    for h, t, in6 in [
        (512, 1, True),
        (1024, 1500, True),
        (1536, 375, True),
        (2048, 375, True),
        (2560, 375, True),
        (2816, 750, False),
    ]
)


def all_tasks() -> tuple[RNNTask, ...]:
    """Every task in the suite (including GRU 2816)."""
    return LSTM_TASKS + GRU_TASKS


def table6_tasks() -> tuple[RNNTask, ...]:
    """The ten points of Table 6."""
    return tuple(t for t in all_tasks() if t.in_table6)


def task(kind: str, hidden: int, timesteps: int | None = None) -> RNNTask:
    """Look up a task by kind and hidden size (timesteps optional if the
    suite has exactly one entry for that size)."""
    matches = [
        t
        for t in all_tasks()
        if t.kind == kind
        and t.hidden == hidden
        and (timesteps is None or t.timesteps == timesteps)
    ]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        if timesteps is not None:
            return RNNTask(kind, hidden, timesteps)
        raise WorkloadError(f"no task {kind} H={hidden} in the suite; pass timesteps")
    raise WorkloadError(f"ambiguous task {kind} H={hidden}: specify timesteps")
