"""Benchmark workloads (Baidu DeepBench RNN inference)."""

from repro.workloads.deepbench import (
    GRU_TASKS,
    LSTM_TASKS,
    RNNTask,
    all_tasks,
    table6_tasks,
    task,
)

__all__ = ["RNNTask", "LSTM_TASKS", "GRU_TASKS", "all_tasks", "table6_tasks", "task"]
