"""Benchmark workloads: the DeepBench RNN suite plus the model zoo
(stacked and encoder-decoder tasks, see :mod:`repro.workloads.zoo`)."""

from repro.workloads.deepbench import (
    GRU_TASKS,
    LSTM_TASKS,
    RNNTask,
    all_tasks,
    table6_tasks,
    task,
)
from repro.workloads.zoo import ZOO_TASKS, seq2seq, stacked, zoo_task, zoo_tasks

__all__ = [
    "RNNTask",
    "LSTM_TASKS",
    "GRU_TASKS",
    "all_tasks",
    "table6_tasks",
    "task",
    "stacked",
    "seq2seq",
    "ZOO_TASKS",
    "zoo_tasks",
    "zoo_task",
]
