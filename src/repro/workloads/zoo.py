"""The model zoo: stacked and encoder-decoder RNN serving workloads.

The paper's evaluation (Table 6/7) is fixed-length, single-layer
DeepBench points.  Production RNN serving is dominated by two richer
shapes this module describes:

* **stacked** models — speech pipelines à la DeepSpeech 2 run several
  identical GRU/LSTM layers per time step;
* **seq2seq / encoder-decoder** models — translation à la GNMT runs an
  encoder over the input sequence, then a decoder of the same shape
  emits the output sequence step by step.

Both are expressed on :class:`~repro.workloads.deepbench.RNNTask`
(``layers`` / ``decoder_timesteps``), so every platform cost model,
scheduler, batcher, and report works on them unchanged.  Hidden sizes in
the named zoo reuse the DeepBench suite's sizes, so Plasticine's
reconstructed Table 7 loop parameters apply and no DSE run is needed to
serve them.

Example::

    >>> from repro.workloads.zoo import stacked, seq2seq, zoo_task
    >>> stacked("gru", 1536, 150, layers=3).total_steps
    450
    >>> seq2seq("lstm", 1024, 30, 30, layers=2).name
    'lstm-h1024-l2-t30d30'
    >>> zoo_task("s2s-gru-512").decoder_timesteps
    10
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.deepbench import RNNTask

__all__ = ["stacked", "seq2seq", "ZOO_TASKS", "zoo_tasks", "zoo_task"]


def stacked(kind: str, hidden: int, timesteps: int, layers: int) -> RNNTask:
    """An L-layer stacked RNN task (``layers`` identical cells per step).

    Example::

        >>> t = stacked("lstm", 512, 25, layers=2)
        >>> (t.name, t.layers, t.total_steps)
        ('lstm-h512-l2-t25', 2, 50)
    """
    if layers < 2:
        raise WorkloadError(
            f"a stacked task needs layers >= 2, got {layers}; "
            f"use repro.workloads.deepbench.task for single-layer models"
        )
    return RNNTask(kind, hidden, timesteps, layers=layers, in_table6=False)


def seq2seq(
    kind: str,
    hidden: int,
    encoder_timesteps: int,
    decoder_timesteps: int,
    *,
    layers: int = 1,
) -> RNNTask:
    """An encoder-decoder task: ``encoder_timesteps`` in,
    ``decoder_timesteps`` out, through ``layers`` stacked cells.

    Example::

        >>> t = seq2seq("gru", 512, 25, 10)
        >>> (t.timesteps, t.decoder_timesteps, t.total_steps)
        (25, 10, 35)
    """
    if decoder_timesteps < 1:
        raise WorkloadError(
            f"a seq2seq task needs decoder_timesteps >= 1, got {decoder_timesteps}"
        )
    return RNNTask(
        kind,
        hidden,
        encoder_timesteps,
        layers=layers,
        decoder_timesteps=decoder_timesteps,
        in_table6=False,
    )


#: Named zoo workloads.  Shapes are scaled after well-known production
#: models but pinned to DeepBench hidden sizes so the reconstructed
#: Table 7 Plasticine parameters cover them.
ZOO_TASKS: dict[str, RNNTask] = {
    # DeepSpeech-2-like speech pipeline: 3 stacked GRU layers over a
    # 150-step utterance.
    "ds2-gru-3x1536": stacked("gru", 1536, 150, layers=3),
    # GNMT-like translation: 2 stacked LSTM layers, 30-token encoder,
    # 30-token decoder.
    "gnmt-lstm-2x1024": seq2seq("lstm", 1024, 30, 30, layers=2),
    # A small interactive seq2seq point (chat-style completion).
    "s2s-gru-512": seq2seq("gru", 512, 25, 10),
    # A 2-layer variant of the paper's LSTM 512 point.
    "stack-lstm-2x512": stacked("lstm", 512, 25, layers=2),
}


def zoo_tasks() -> tuple[RNNTask, ...]:
    """Every named zoo task, in name order.

    Example::

        >>> [t.layers for t in zoo_tasks()] == [3, 2, 1, 2]
        True
    """
    return tuple(ZOO_TASKS[name] for name in sorted(ZOO_TASKS))


def zoo_task(name: str) -> RNNTask:
    """Look up a zoo task by its registry name.

    Example::

        >>> zoo_task("ds2-gru-3x1536").layers
        3
        >>> zoo_task("nope")  # doctest: +IGNORE_EXCEPTION_DETAIL
        Traceback (most recent call last):
        WorkloadError: ...
    """
    try:
        return ZOO_TASKS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown zoo task {name!r}; known: {', '.join(sorted(ZOO_TASKS))}"
        ) from None
