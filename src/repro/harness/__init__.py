"""Reproduction harness: regenerate every table and figure of the paper.

* :mod:`repro.harness.paper_data` — every number the paper publishes
  (Tables 3-7), used as the comparison baseline.
* :mod:`repro.harness.platforms` — hardware/application spec registry
  (Tables 4 and 5).
* :mod:`repro.harness.report` — text-table formatting and
  paper-vs-measured comparison helpers.
* :mod:`repro.harness.tables` — regenerate Tables 3, 4, 5, 6, 7.
* :mod:`repro.harness.figures` — regenerate Figures 1-4, 6, 7 as numeric
  series / diagrams.
"""

from repro.harness.report import format_table, geometric_mean
from repro.harness.tables import (
    table3,
    table4,
    table5,
    table6,
    table7,
)
from repro.harness.figures import (
    figure1_3_footprints,
    figure4_fragmentation,
    figure6_pcu_timing,
    figure7_layouts,
)

__all__ = [
    "format_table",
    "geometric_mean",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "figure1_3_footprints",
    "figure4_fragmentation",
    "figure6_pcu_timing",
    "figure7_layouts",
]
