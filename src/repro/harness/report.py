"""Text-table formatting and paper-vs-measured comparison helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError

__all__ = ["format_table", "geometric_mean", "Comparison", "compare"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        if magnitude >= 10:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the aggregation Table 6 uses for speedups)."""
    if not values:
        raise ConfigError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigError("geometric_mean requires positive values")
    return float(math.exp(sum(math.log(v) for v in values) / len(values)))


@dataclass(frozen=True)
class Comparison:
    """A measured value against the paper's published value."""

    label: str
    paper: float
    measured: float

    @property
    def ratio(self) -> float:
        return self.measured / self.paper

    @property
    def rel_error(self) -> float:
        return self.measured / self.paper - 1.0

    def within(self, tolerance: float) -> bool:
        return abs(self.rel_error) <= tolerance

    def describe(self) -> str:
        return f"{self.label}: paper {self.paper:.4g}, measured {self.measured:.4g} ({self.rel_error:+.1%})"


def compare(label: str, paper: float, measured: float) -> Comparison:
    if paper <= 0:
        raise ConfigError(f"{label}: paper value must be positive")
    return Comparison(label=label, paper=paper, measured=measured)
