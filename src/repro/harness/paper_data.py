"""Every number the paper publishes, as typed data.

Source: Zhao, Zhang, Olukotun, "Serving Recurrent Neural Networks
Efficiently with a Spatial Accelerator", SysML 2019 (arXiv:1909.13654).

Table 6 is the headline result; the dataclass carries one row per
(cell, H, T) point with the four platforms' latency, effective TFLOPS,
Plasticine speedups, and simulated Plasticine power.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Table6Row",
    "TABLE6",
    "TABLE6_GEOMEAN_SPEEDUPS",
    "TABLE3_CONFIG",
    "TABLE7_BRAINWAVE",
    "paper_row",
]


@dataclass(frozen=True)
class Table6Row:
    """One row of Table 6 (latencies in ms, power in W)."""

    kind: str
    hidden: int
    timesteps: int
    latency_cpu_ms: float
    latency_gpu_ms: float
    latency_bw_ms: float
    latency_plasticine_ms: float
    tflops_cpu: float
    tflops_gpu: float
    tflops_bw: float
    tflops_plasticine: float
    speedup_vs_cpu: float
    speedup_vs_gpu: float
    speedup_vs_bw: float
    power_plasticine_w: float


TABLE6: tuple[Table6Row, ...] = (
    Table6Row("lstm", 256, 150, 15.75, 1.69, 0.425, 0.0419,
              0.010, 0.09, 0.37, 3.8, 376.3, 40.4, 10.2, 28.5),
    Table6Row("lstm", 512, 25, 11.50, 0.60, 0.077, 0.0139,
              0.009, 0.18, 1.37, 7.6, 830.3, 43.2, 5.6, 53.7),
    Table6Row("lstm", 1024, 25, 107.65, 0.71, 0.074, 0.0292,
              0.004, 0.59, 5.68, 14.4, 3686.6, 24.3, 2.5, 97.2),
    Table6Row("lstm", 1536, 50, 411.00, 4.38, 0.145, 0.1224,
              0.005, 0.43, 13.01, 15.4, 3357.8, 35.8, 1.2, 102.7),
    Table6Row("lstm", 2048, 25, 429.36, 1.55, 0.074, 0.1060,
              0.004, 1.08, 22.62, 15.8, 4050.6, 14.6, 0.7, 104.5),
    Table6Row("gru", 512, 1, 0.91, 0.39, 0.013, 0.0004,
              0.003, 0.01, 0.25, 7.6, 2182.3, 942.4, 31.2, 61.9),
    Table6Row("gru", 1024, 1500, 3810.00, 33.77, 3.792, 1.4430,
              0.005, 0.56, 4.98, 13.1, 2640.3, 23.4, 2.6, 109.1),
    Table6Row("gru", 1536, 375, 2730.00, 13.12, 0.951, 0.7463,
              0.004, 0.81, 11.17, 14.2, 3658.3, 17.6, 1.3, 114.6),
    Table6Row("gru", 2048, 375, 5040.00, 17.70, 0.954, 1.2833,
              0.004, 1.07, 19.79, 14.7, 3927.5, 13.8, 0.7, 101.2),
    Table6Row("gru", 2560, 375, 7590.00, 23.57, 0.993, 1.9733,
              0.004, 1.25, 29.69, 15.0, 3846.4, 11.9, 0.5, 117.2),
)

#: Table 6's "Geometric Mean" row: Plasticine speedup vs CPU / GPU / BW.
TABLE6_GEOMEAN_SPEEDUPS = {"cpu": 2529.3, "gpu": 29.8, "brainwave": 2.0}

#: Table 3: the Plasticine configuration used in the evaluation.
TABLE3_CONFIG = {
    "rows": 24,
    "cols": 24,
    "n_pcu": 192,
    "n_pmu": 384,
    "lanes": 16,
    "stages": 4,
    "pmu_capacity_kb": 84,
}

#: Table 7: Brainwave's single parameter set on Stratix 10 (the
#: Plasticine columns did not survive PDF extraction intact and are
#: reconstructed in :mod:`repro.dse.tuner`).
TABLE7_BRAINWAVE = {"ru": 6, "hv": 400, "rv": 40}


def paper_row(kind: str, hidden: int) -> Table6Row:
    """Look up a Table 6 row."""
    for row in TABLE6:
        if row.kind == kind and row.hidden == hidden:
            return row
    raise KeyError(f"no Table 6 row for {kind} H={hidden}")
