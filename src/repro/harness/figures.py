"""Regenerate the paper's figures as numeric series and diagrams.

The figures are qualitative diagrams in the paper; here each becomes a
quantitative artifact:

* Figure 1/2/3 — per-step intermediate footprints of the four LSTM
  implementations over an H sweep.
* Figure 4 — utilization under 2-D (MVM tile) vs 1-D (loop) fragmentation.
* Figure 6 — PCU map-reduce stage/cycle counts for every combination of
  the fused and folded micro-architecture options.
* Figure 7 — the checkerboard and RNN-variant chip layouts.
"""

from __future__ import annotations

from repro.analysis.footprint import (
    basic_lstm_footprint,
    brainwave_footprint,
    cudnn_lstm_footprint,
    loop_based_footprint,
)
from repro.analysis.fragmentation import utilization_sweep
from repro.harness.report import format_table
from repro.plasticine.network import GridLayout
from repro.plasticine.pcu import PCUConfig

__all__ = [
    "figure1_3_footprints",
    "figure4_fragmentation",
    "figure6_pcu_timing",
    "figure7_layouts",
]


def figure1_3_footprints(sizes: list[int] | None = None) -> str:
    """Figures 1-3: intermediate bytes per step, per implementation."""
    sizes = sizes or [256, 512, 1024, 2048]
    rows = []
    for h in sizes:
        impls = [
            basic_lstm_footprint(h),
            cudnn_lstm_footprint(h),
            brainwave_footprint(h),
            loop_based_footprint(h),
        ]
        rows.append([h] + [i.total_bytes for i in impls])
    return format_table(
        ["H", "BasicLSTM (B)", "CudnnLSTM (B)", "Brainwave (B)", "Loop-based (B)"],
        rows,
        title="Figures 1-3: per-step intermediate buffer footprint",
    )


def figure4_fragmentation(sizes: list[int] | None = None) -> str:
    """Figure 4: compute utilization, MVM-tiled vs loop-based."""
    points = utilization_sweep(sizes)
    rows = [
        [p.h, p.r, round(p.mvm_utilization, 3), round(p.loop_utilization, 3),
         round(p.advantage, 2)]
        for p in points
    ]
    return format_table(
        ["H", "R", "MVM util (2-D frag)", "loop util (1-D frag)", "advantage"],
        rows,
        title="Figure 4: fragmentation-driven utilization",
    )


def figure6_pcu_timing() -> str:
    """Figure 6: the PCU's low-precision map-reduce under each
    micro-architectural option (stage usage, latency, FU utilization)."""
    rows = []
    for fused in (False, True):
        for folded in (False, True):
            stages_budget = 4 if (fused and folded) else 12
            pcu = PCUConfig(
                lanes=16,
                stages=stages_budget,
                fused_low_precision=fused,
                folded_reduction=folded,
            )
            t = pcu.map_reduce_timing(8)
            rows.append(
                [
                    "fused" if fused else "unfused",
                    "folded" if folded else "tree-per-stage",
                    t.stages_used,
                    t.depth_cycles,
                    t.elements_per_cycle,
                    round(pcu.reduction_fu_utilization(), 3),
                ]
            )
    return format_table(
        ["map ops", "reduction", "stages used", "latency (cyc)", "elems/cyc", "tree FU util"],
        rows,
        title="Figure 6: PCU low-precision map-reduce (16 lanes, 8-bit)",
    )


def figure7_layouts() -> str:
    """Figure 7: original checkerboard vs the RNN-serving variant."""
    checker = GridLayout.checkerboard(16, 8)
    variant = GridLayout.rnn_variant(24, 24)
    lines = [
        "Figure 7: chip layouts",
        "",
        f"original checkerboard ({checker.n_pcu} PCU / {checker.n_pmu} PMU, "
        f"ratio {checker.pmu_to_pcu_ratio:.1f}):",
        checker.ascii_diagram(4, 8),
        "",
        f"RNN-serving variant ({variant.n_pcu} PCU / {variant.n_pmu} PMU, "
        f"ratio {variant.pmu_to_pcu_ratio:.1f}):",
        variant.ascii_diagram(4, 9),
    ]
    return "\n".join(lines)
