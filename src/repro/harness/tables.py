"""Regenerate the paper's tables with live measurements.

Each ``tableN()`` returns a structured result plus a ``text`` rendering
that prints the same rows the paper reports, side by side with the
paper's published values where applicable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dse.tuner import paper_params, tune
from repro.harness.paper_data import TABLE6, TABLE6_GEOMEAN_SPEEDUPS, paper_row
from repro.platforms import PLATFORMS
from repro.harness.report import format_table, geometric_mean
from repro.plasticine.area_power import AreaPowerModel
from repro.plasticine.chip import PlasticineConfig
from repro.serving import ServingEngine, ServingResult
from repro.workloads.deepbench import RNNTask, table6_tasks

__all__ = ["table3", "table4", "table5", "table6", "table7", "Table6Result"]


def table3() -> str:
    """Table 3: Plasticine configuration."""
    chip = PlasticineConfig.rnn_serving()
    d = chip.describe()
    rows = [
        ["# Row", chip.layout.rows, "# Column", chip.layout.cols],
        ["# PCU", d["n_pcu"], "# PMU", d["n_pmu"]],
        ["# Lanes in PCU", d["lanes"], "# Stages in PCU", d["stages"]],
        ["Scratchpad per PMU (kB)", d["pmu_capacity_kb"], "On-chip total (MB)", d["onchip_mb"]],
    ]
    return format_table(["", "", "", ""], rows, title="Table 3: Plasticine configuration")


def table4() -> str:
    """Table 4: hardware specifications of the four platforms."""
    model = AreaPowerModel()
    chip = PlasticineConfig.rnn_serving()
    derived_area = model.chip_area_mm2(chip)
    headers = ["Specification"] + [p.display_name for p in PLATFORMS.values()]
    rows = [
        ["Max clock (GHz)"] + [p.max_clock_ghz for p in PLATFORMS.values()],
        ["On-chip memory (MB)"] + [p.onchip_memory_mb for p in PLATFORMS.values()],
        ["Peak 32-bit TFLOPS"] + [p.peak_tflops_32bit or "-" for p in PLATFORMS.values()],
        ["Peak 8-bit TFLOPS"] + [p.peak_tflops_8bit or "-" for p in PLATFORMS.values()],
        ["Technology (nm)"] + [p.technology_nm for p in PLATFORMS.values()],
        ["Die area (mm2)"] + [p.die_area_mm2 for p in PLATFORMS.values()],
        ["TDP (W)"] + [p.tdp_w for p in PLATFORMS.values()],
        ["Die area, our model (mm2)", "-", "-", "-", round(derived_area, 2)],
        ["TDP, our model (W)", "-", "-", "-", round(model.chip_tdp_w(chip), 1)],
    ]
    return format_table(headers, rows, title="Table 4: hardware specifications")


def table5() -> str:
    """Table 5: application configurations."""
    headers = ["Platform", "Framework", "Achieved clock (GHz)", "Precision"]
    rows = [
        [p.display_name, p.software_framework, p.achieved_clock_ghz, p.precision]
        for p in PLATFORMS.values()
    ]
    return format_table(headers, rows, title="Table 5: application configurations")


@dataclass(frozen=True)
class Table6Result:
    """Live Table 6: per-task results plus geomean speedups."""

    results: dict[str, dict[str, ServingResult]] = field(repr=False)
    geomean_speedups: dict[str, float] = field(default_factory=dict)
    text: str = ""


def table6(tasks: tuple[RNNTask, ...] | None = None) -> Table6Result:
    """Regenerate Table 6 across all four platforms.

    Latency / effective TFLOPS / Plasticine speedups / simulated power per
    task, with the paper's values inline for comparison.
    """
    tasks = tasks or table6_tasks()
    # One compile-once engine per Table 6 platform for the whole table.
    engines = {
        name: ServingEngine(name) for name in ("cpu", "gpu", "brainwave", "plasticine")
    }
    results: dict[str, dict[str, ServingResult]] = {}
    rows = []
    speedups: dict[str, list[float]] = {"cpu": [], "gpu": [], "brainwave": []}
    for task in tasks:
        per = {name: engine.serve(task).result for name, engine in engines.items()}
        results[task.name] = per
        plat = per["plasticine"]
        for key in speedups:
            speedups[key].append(plat.speedup_over(per[key]))
        try:
            paper = paper_row(task.kind, task.hidden)
            paper_lat, paper_pow = paper.latency_plasticine_ms, paper.power_plasticine_w
        except KeyError:
            paper_lat = paper_pow = float("nan")
        rows.append(
            [
                task.name,
                per["cpu"].latency_ms,
                per["gpu"].latency_ms,
                per["brainwave"].latency_ms,
                plat.latency_ms,
                paper_lat,
                plat.effective_tflops,
                plat.speedup_over(per["cpu"]),
                plat.speedup_over(per["gpu"]),
                plat.speedup_over(per["brainwave"]),
                plat.power_w,
                paper_pow,
            ]
        )
    geo = {k: geometric_mean(v) for k, v in speedups.items()}
    rows.append(
        ["geomean", "", "", "", "", "", "",
         geo["cpu"], geo["gpu"], geo["brainwave"], "", ""]
    )
    rows.append(
        ["geomean (paper)", "", "", "", "", "", "",
         TABLE6_GEOMEAN_SPEEDUPS["cpu"], TABLE6_GEOMEAN_SPEEDUPS["gpu"],
         TABLE6_GEOMEAN_SPEEDUPS["brainwave"], "", ""]
    )
    text = format_table(
        [
            "task", "cpu ms", "gpu ms", "bw ms", "plast ms", "plast ms (paper)",
            "plast TFLOPS", "x cpu", "x gpu", "x bw", "power W", "power W (paper)",
        ],
        rows,
        title="Table 6: DeepBench inference (measured vs paper)",
    )
    return Table6Result(results=results, geomean_speedups=geo, text=text)


def table7(
    tasks: tuple[RNNTask, ...] | None = None,
    run_dse: bool = True,
    *,
    pass_axis: bool = False,
    workers: int | None = None,
) -> str:
    """Table 7: per-task design parameters — Brainwave's fixed set, our
    reconstructed paper parameters, and (optionally) the DSE optimum.

    ``pass_axis=True`` also searches the optimization-pass axis
    (``fuse_gates``/``double_buffer``) and adds a column naming the
    winning pass config per task; ``workers`` fans the per-task sweeps
    onto a process pool (bit-identical results, just faster).
    """
    from repro.workloads.deepbench import all_tasks

    tasks = tasks or all_tasks()
    headers = ["task", "BW ru/hv/rv", "paper hu/ru/rv", "dse hu/ru/rv", "dse cyc/step"]
    if pass_axis:
        headers.append("dse passes")
    rows = []
    for task in tasks:
        pp = paper_params(task)
        paper_txt = f"{pp.hu}/{pp.ru}/{pp.rv}" if pp else "-"
        if run_dse:
            res = tune(task, pass_axis=pass_axis, workers=workers)
            dse_txt = f"{res.best_params.hu}/{res.best_params.ru}/{res.best_params.rv}"
            cyc = res.best.cycles_per_step
            passes = res.best.pass_config.key
        else:
            dse_txt, cyc, passes = "-", "-", "-"
        row = [task.name, "6/400/40", paper_txt, dse_txt, cyc]
        if pass_axis:
            row.append(passes)
        rows.append(row)
    return format_table(headers, rows, title="Table 7: design parameters")
