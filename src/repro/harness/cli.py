"""Command-line interface: regenerate any table or figure.

Usage::

    python -m repro table3|table4|table5|table6|table7
    python -m repro figure1_3|figure4|figure6|figure7
    python -m repro claims           # the abstract's headline claims
    python -m repro serve lstm 1024  # one task on all registered platforms
    python -m repro serve --platform plasticine          # one platform
    python -m repro serve lstm 512 --stream --rate 400 --slo-ms 5
    python -m repro all              # everything (slow: runs the DSE)
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def _cmd_table(name: str) -> Callable[[argparse.Namespace], str]:
    def run(args: argparse.Namespace) -> str:
        from repro.harness import tables

        fn = getattr(tables, name)
        out = fn()
        return out.text if hasattr(out, "text") else out

    return run


def _cmd_table7(args: argparse.Namespace) -> str:
    from repro.errors import DSEError
    from repro.harness import tables

    if args.dse_workers is not None and args.dse_workers < 1:
        raise DSEError("--dse-workers must be >= 1")
    return tables.table7(pass_axis=args.pass_axis, workers=args.dse_workers)


def _cmd_figure(name: str) -> Callable[[argparse.Namespace], str]:
    def run(args: argparse.Namespace) -> str:
        from repro.harness import figures

        return getattr(figures, name)()

    return run


def _cmd_claims(args: argparse.Namespace) -> str:
    from repro.analysis.efficiency import abstract_claims

    return abstract_claims().text


def _cmd_serve(args: argparse.Namespace) -> str:
    from repro.errors import ServingError
    from repro.serving import available_platforms, get_platform
    from repro.workloads.deepbench import task

    _validate_serve_flags(args)
    t = task(args.kind, args.hidden, args.timesteps)
    if args.plan_capacity:
        return _serve_plan_capacity(args, t)
    if args.platform:
        get_platform(args.platform)  # fail fast with the registry's message
        names = [args.platform]
    elif args.fleet_mix:
        # One row: the whole heterogeneous fleet is the "platform".
        names = [args.fleet_mix]
    else:
        names = list(available_platforms())
    if args.listen and args.clients is None:
        if not args.platform:
            raise ServingError(
                "--listen without --clients serves forever and needs one "
                "platform; pass --platform NAME"
            )
        return _serve_listen_forever(args, t)
    if args.clients is not None:
        return _serve_live_table(args, t, names)
    if args.stream:
        return _serve_stream_table(args, t, names)
    return _serve_once_table(t, names)


def _validate_serve_flags(args: argparse.Namespace) -> None:
    """Cross-flag validation for the parallel/live serving frontends.

    Also resolves the ``--mode`` default: ``full`` classically, but a
    sharded run *is* summary serving (each worker streams its shard
    through O(1)-memory statistics), so ``--shards`` defaults to
    ``summary`` and an explicit ``--mode full`` with it is rejected
    rather than silently downgraded.
    """
    from repro.errors import ServingError

    if args.shards is not None and args.shards < 1:
        raise ServingError("--shards must be >= 1")
    if args.workers is not None:
        if args.workers < 1:
            raise ServingError("--workers must be >= 1")
        if args.shards is None:
            raise ServingError("--workers only applies to a sharded run; add --shards N")
    if args.clients is not None and args.clients < 1:
        raise ServingError("--clients must be >= 1")
    if args.listen:
        _parse_listen(args.listen)  # fail fast on a malformed spec
    if args.shards is not None:
        if args.listen:
            raise ServingError(
                "--shards replays a stream across worker processes and "
                "--listen starts a live server; pick one frontend"
            )
        if args.mode == "full":
            raise ServingError(
                "--shards merges per-shard summaries and cannot "
                "materialize every response; drop --mode full (sharded "
                "runs default to --mode summary)"
            )
    if args.fleet_mix:
        from repro.serving import parse_fleet_mix

        parse_fleet_mix(args.fleet_mix)  # fail fast on a malformed spec
        if args.platform:
            raise ServingError(
                "--fleet-mix names the whole fleet roster; drop --platform"
            )
        if args.replicas != 1:
            raise ServingError(
                "--fleet-mix sets the replica count from the roster "
                "(e.g. plasticine:2,gpu:1 is three replicas); drop --replicas"
            )
        if args.listen or args.clients is not None:
            raise ServingError(
                "--fleet-mix drives the simulated stream; the live "
                "frontend serves a single platform"
            )
    if args.plan_capacity:
        if args.listen or args.clients is not None or args.shards is not None:
            raise ServingError(
                "--plan-capacity sweeps candidate fleets over its own "
                "diurnal workload; drop --listen/--clients/--shards"
            )
        if args.trace or args.mix:
            raise ServingError(
                "--plan-capacity generates its own diurnal workload; "
                "drop --trace/--mix"
            )
    if args.dse_workers is not None and args.dse_workers < 1:
        raise ServingError("--dse-workers must be >= 1")
    if not args.plan_capacity and (
        args.dse_workers is not None or not args.dse_prune or args.dse_cache
    ):
        raise ServingError(
            "--dse-workers/--no-dse-prune/--dse-cache tune the "
            "capacity-planner DSE; add --plan-capacity"
        )
    if args.timeout_ms is not None and args.timeout_ms <= 0:
        raise ServingError("--timeout-ms must be positive")
    if args.hedge_ms is not None and args.hedge_ms <= 0:
        raise ServingError("--hedge-ms must be positive")
    if args.retries < 0:
        raise ServingError("--retries must be >= 0")
    if args.retries and args.timeout_ms is None:
        raise ServingError(
            "--retries re-dispatches timed-out requests; add --timeout-ms"
        )
    faulty = args.faults != "none" or args.hedge_ms is not None or args.retries
    if args.plan_capacity and (
        faulty or args.timeout_ms is not None or args.autoscale
    ):
        raise ServingError(
            "--plan-capacity scores clean candidate fleets; drop "
            "--faults/--retries/--hedge-ms/--timeout-ms/--autoscale"
        )
    if faulty and (args.listen or args.clients is not None):
        raise ServingError(
            "--faults/--retries/--hedge-ms inject into the simulated "
            "stream; the live frontend honors only --timeout-ms"
        )
    if args.mode is None:
        args.mode = "summary" if args.shards is not None else "full"
    if (
        args.shards is not None
        or args.listen
        or args.clients is not None
        or faulty
        or args.timeout_ms is not None
        or args.fleet_mix
    ):
        # The parallel, live, fault-injected, and mixed-fleet frontends
        # are stream serving by definition.
        args.stream = True


#: Fallback sequence length for --mix specs naming a task outside the
#: DeepBench suite without an explicit timesteps component.
_MIX_DEFAULT_TIMESTEPS = 25


def _request_count(text: str) -> int:
    """``--requests`` value: a positive whole number, scientific notation
    welcome (``--requests 1e6``)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid request count {text!r}") from None
    if not value.is_integer() or value < 1:
        raise argparse.ArgumentTypeError(
            f"--requests needs a positive whole number, got {text!r}"
        )
    return int(value)


def _parse_mix(spec: str):
    """Parse ``--mix`` specs:
    ``kind:hidden[:timesteps[dDEC]][:layers][@slo_ms][^prio]``.

    Returns a list of (task, slo_ms, priority) tuples, one per
    comma-separated entry.  Tasks in the DeepBench suite resolve their
    timesteps automatically; anything else defaults to 25 timesteps.
    ``25d10`` in the timesteps field makes the task seq2seq (25 encoder
    + 10 decoder steps); a fourth field stacks that many layers —
    ``lstm:1024:30d30:2`` is a 2-layer GNMT-style encoder-decoder.
    """
    from repro.errors import ServingError, WorkloadError
    from repro.workloads.deepbench import RNNTask, task

    entries = []
    for part in spec.split(","):
        body = part.strip()
        if not body:
            continue
        try:
            priority = 0
            slo_ms = None
            if "^" in body:
                body, _, prio_text = body.rpartition("^")
                priority = int(prio_text)
            if "@" in body:
                body, _, slo_text = body.rpartition("@")
                slo_ms = float(slo_text)
            fields = body.split(":")
            if len(fields) not in (2, 3, 4):
                raise ValueError("wrong field count")
            kind, hidden = fields[0], int(fields[1])
            timesteps = None
            decoder = 0
            if len(fields) >= 3:
                t_text, _, dec_text = fields[2].partition("d")
                timesteps = int(t_text)
                decoder = int(dec_text) if dec_text else 0
            layers = int(fields[3]) if len(fields) == 4 else 1
            if layers < 1 or decoder < 0:
                # Reject rather than fall through to the single-layer
                # lookup — a typo must not silently serve a different
                # workload than the user named.
                raise ValueError("layers must be >= 1 and decoder >= 0")
        except ValueError as exc:
            raise ServingError(
                f"bad --mix entry {part!r}; expected "
                f"kind:hidden[:timesteps[dDECODER]][:layers][@slo_ms][^priority]"
            ) from exc
        if layers > 1 or decoder > 0:
            t = RNNTask(
                kind,
                hidden,
                timesteps if timesteps is not None else _MIX_DEFAULT_TIMESTEPS,
                layers=layers,
                decoder_timesteps=decoder,
                in_table6=False,
            )
        else:
            try:
                t = task(kind, hidden, timesteps)
            except WorkloadError:
                t = RNNTask(kind, hidden, _MIX_DEFAULT_TIMESTEPS)
        entries.append((t, slo_ms, priority))
    if not entries:
        raise ServingError(f"--mix {spec!r} names no tasks")
    return entries


def _mix_lazy(tenant_kwargs: tuple) -> object:
    """Module-level lazy --mix factory (closures cannot cross a
    multiprocessing pool, so sharded runs need a picklable callable)."""
    from repro.serving import mix, poisson_arrivals

    return mix(*(poisson_arrivals(**kw) for kw in tenant_kwargs), presorted=True)


def _build_stream(args: argparse.Namespace, default_task):
    """Build the arrival stream for --stream mode.

    Returns ``(make_arrivals, description)`` where ``make_arrivals()``
    yields a fresh stream per call (each platform consumes its own).
    Precedence: --trace replays a recorded stream verbatim; --mix
    interleaves one Poisson tenant per spec (splitting --rate and
    --requests evenly); otherwise a single Poisson stream of the
    positional task.

    With ``--mode summary`` everything is *lazy*: the trace is read line
    by line (:func:`~repro.serving.traffic.iter_trace`), generators
    yield requests one at a time (``materialize=False``), and --mix
    merges sorted tenant streams incrementally — a million-request
    stream never sits in memory.  The lazy factories are built from
    module-level callables (``functools.partial``), so ``--shards`` can
    ship them to pool workers for per-shard re-generation.
    """
    from functools import partial
    from repro.errors import ServingError
    from repro.serving import (
        iter_trace,
        length_sampler,
        mix,
        poisson_arrivals,
        record_trace,
        replay_trace,
    )

    lazy = args.mode == "summary"
    lengths = length_sampler(args.length_dist) if args.length_dist else None
    if args.trace:
        if lengths is not None:
            raise ServingError(
                "--length-dist cannot apply to a replayed trace: the "
                "trace already records every request's length; drop one "
                "of --trace / --length-dist"
            )
        if lazy:
            factory = partial(iter_trace, args.trace)
        else:
            arrivals = replay_trace(args.trace)

            def factory():
                return arrivals
        desc = f"trace {args.trace}"
    elif args.mix:
        specs = _parse_mix(args.mix)
        per_rate = args.rate / len(specs)
        per_n = max(1, args.requests // len(specs))
        tenant_kwargs = tuple(
            dict(
                task=t,
                rate_per_s=per_rate,
                n_requests=per_n,
                seed=args.seed + i,
                tenant=t.name,
                priority=priority,
                slo_ms=slo_ms,
                lengths=lengths,
                materialize=not lazy,
            )
            for i, (t, slo_ms, priority) in enumerate(specs)
        )

        if lazy:
            factory = partial(_mix_lazy, tenant_kwargs)
        else:
            arrivals = mix(
                *(poisson_arrivals(**kw) for kw in tenant_kwargs)
            )

            def factory():
                return arrivals
        desc = f"{len(specs)}-tenant mix at {args.rate:.0f} req/s"
    else:
        if lazy:
            factory = partial(
                poisson_arrivals,
                default_task,
                rate_per_s=args.rate,
                n_requests=args.requests,
                seed=args.seed,
                tenant=default_task.name,
                lengths=lengths,
                materialize=False,
            )
        else:
            arrivals = poisson_arrivals(
                default_task,
                rate_per_s=args.rate,
                n_requests=args.requests,
                seed=args.seed,
                tenant=default_task.name,
                lengths=lengths,
            )

            def factory():
                return arrivals
        desc = f"{default_task.name} at {args.rate:.0f} req/s"
    if lengths is not None and not args.trace:
        desc += f", lengths {args.length_dist}"
    if args.record_trace:
        # record_trace streams line by line, so one lazy pass suffices.
        record_trace(factory(), args.record_trace)
    return factory, desc


def _tenant_breakdown_table(name: str, report, slo_ms: float) -> str:
    from repro.harness.report import format_table

    rows = []
    for tenant, sub in report.per_tenant().items():
        # Works for both the materialized report and the O(1) summary:
        # the single per-request SLO tag if the tenant has one, else the
        # stream-level SLO.
        tenant_slo = sub.uniform_slo_ms()
        if tenant_slo is None:
            tenant_slo = slo_ms
        rows.append(
            [
                tenant,
                sub.n_requests,
                round(sub.p50_ms, 3),
                round(sub.p99_ms, 3),
                tenant_slo,
                f"{100.0 * sub.slo_attainment:.1f}%",
            ]
        )
    return format_table(
        ["tenant", "requests", "P50 ms", "P99 ms", "SLO ms", "SLO attained"],
        rows,
        title=f"Per-tenant breakdown ({name})",
    )


def _serve_once_table(t, names: list[str]) -> str:
    from repro.harness.report import format_table
    from repro.serving import ServingEngine

    results = {name: ServingEngine(name).serve(t).result for name in names}
    plat = results.get("plasticine")
    headers = ["platform", "latency ms", "eff TFLOPS", "power W"]
    if plat is not None:
        headers.insert(3, "plasticine speedup")
    rows = []
    for res in results.values():
        row = [
            res.platform,
            res.latency_ms,
            res.effective_tflops,
            res.power_w if res.power_w is not None else "-",
        ]
        if plat is not None:
            row.insert(3, plat.speedup_over(res))
        rows.append(row)
    return format_table(headers, rows, title=f"Serving {t.name}")


def _parse_autoscale(spec: str):
    """Parse ``--autoscale MIN:MAX`` into an Autoscaler."""
    from repro.errors import ServingError
    from repro.serving import Autoscaler

    try:
        lo_text, _, hi_text = spec.partition(":")
        lo, hi = int(lo_text), int(hi_text)
    except ValueError as exc:
        raise ServingError(
            f"bad --autoscale spec {spec!r}; expected MIN:MAX replica counts"
        ) from exc
    return Autoscaler(min_replicas=lo, max_replicas=hi)


def _scale_events_table(name: str, report) -> str:
    from repro.harness.report import format_table

    rows = [
        [f"{e.time_s * 1e3:.3f}", e.action, e.replicas, e.queue_depth, e.reason]
        for e in report.scale_events
    ]
    return format_table(
        ["t ms", "action", "replicas", "queue depth", "reason"],
        rows,
        title=f"Scale events ({name}: peak {report.n_replicas} replicas, "
        f"{report.active_replicas} active at end)",
    )


def _serve_plan_capacity(args: argparse.Namespace, t) -> str:
    """--plan-capacity: the fleet-level DSE over the serve flags.

    Sweeps platform mix × fleet size (and whatever --policy/--scheduler/
    --batcher name) for the cheapest fleet holding P99 < --slo-ms on a
    seeded diurnal workload peaking at --rate req/s, and prints the
    cost/latency frontier.  --fleet-mix narrows the platform set (and
    its total count caps the fleet size); --platform pins a single
    platform; otherwise the default plasticine/brainwave/gpu space up to
    --replicas (min 3) replicas is searched.
    """
    from repro.dse import FleetSpace, plan_capacity
    from repro.errors import DSEError
    from repro.harness.report import format_table
    from repro.serving import parse_fleet_mix

    if args.fleet_mix:
        roster = parse_fleet_mix(args.fleet_mix)
        platforms = tuple(sorted(set(roster)))
        max_replicas = len(roster)
    elif args.platform:
        platforms = (args.platform,)
        max_replicas = max(args.replicas, 3)
    else:
        platforms = ("plasticine", "brainwave", "gpu")
        max_replicas = max(args.replicas, 3)
    space = FleetSpace(
        platforms=platforms,
        max_replicas=max_replicas,
        policies=(args.policy,),
        schedulers=(args.scheduler,),
        batchers=(args.batcher,),
        max_batch=args.max_batch if args.batcher != "none" else None,
    )
    plan = plan_capacity(
        t,
        slo_ms=args.slo_ms,
        peak_rate_per_s=args.rate,
        n_requests=args.requests,
        seed=args.seed,
        space=space,
        workers=args.dse_workers,
        prune=args.dse_prune,
        cache_dir=args.dse_cache,
    )
    rows = [
        [
            p.mix,
            p.replicas,
            round(p.p99_ms, 3),
            "yes" if p.meets_slo else "NO",
            round(p.throughput_rps, 1),
            round(p.joules_per_request, 6),
            round(p.fleet_watt_hours, 6),
            round(p.cost_usd_per_1m, 4),
        ]
        for p in plan.frontier()
    ]
    table = format_table(
        ["fleet", "replicas", "P99 ms", f"P99<{args.slo_ms:g}ms",
         "req/s", "J/req", "fleet Wh", "$/1M req"],
        rows,
        title=(
            f"Capacity frontier for {t.name} "
            f"(diurnal peak {args.rate:.0f} req/s, {args.requests} "
            f"requests, {space.n_candidates()} candidate fleets, "
            f"{args.policy})"
        ),
    )
    try:
        best = plan.best
        verdict = (
            f"cheapest fleet holding P99 < {args.slo_ms:g} ms: {best.mix} "
            f"at ${best.cost_usd_per_1m:.4f}/1M requests "
            f"(P99 {best.p99_ms:.3f} ms, {best.joules_per_request:.6f} J/req)"
        )
    except DSEError as exc:
        verdict = f"no feasible fleet: {exc}"
    if plan.n_pruned:
        full = len(plan.points) * args.requests
        verdict += (
            f"\npruned {plan.n_pruned}/{len(plan.points)} candidates early: "
            f"{plan.simulated_requests}/{full} requests simulated"
        )
    return f"{table}\n\n{verdict}"


def _serve_stream_table(args: argparse.Namespace, t, names: list[str]) -> str:
    from repro.errors import ServingError
    from repro.harness.report import format_table
    from repro.serving import Fleet, ServingEngine

    if args.replicas < 1:
        raise ServingError("--replicas must be >= 1")
    autoscaler = _parse_autoscale(args.autoscale) if args.autoscale else None
    fault_kwargs = dict(
        faults=args.faults,
        fault_seed=args.fault_seed,
        timeout_ms=args.timeout_ms,
        retries=args.retries,
        hedge_ms=args.hedge_ms,
    )
    make_arrivals, desc = _build_stream(args, t)
    # Summary mode streams lazily, which requires (and all built-in
    # sources guarantee) time-ordered input with monotone ids.
    presorted = args.mode == "summary"
    batched = args.batcher != "none"
    mixed = bool(args.fleet_mix)
    n_replicas = args.replicas
    if mixed:
        from itertools import groupby

        from repro.serving import parse_fleet_mix

        roster = parse_fleet_mix(args.fleet_mix)
        n_replicas = len(roster)
        # Canonical name:count label, e.g. "plasticine:2,gpu:1".
        names = [
            ",".join(f"{n}:{len(list(g))}" for n, g in groupby(roster))
        ]
    n_requests = 0
    rows = []
    breakdowns = []
    for name in names:
        arrivals = None if args.shards is not None else make_arrivals()
        if args.shards is not None:
            from repro.serving import serve_parallel

            report = serve_parallel(
                make_arrivals,
                name,
                shards=args.shards,
                shard_by=args.shard_by,
                workers=args.workers,
                replicas=args.replicas,
                policy=args.policy,
                scheduler=args.scheduler,
                batcher=args.batcher,
                max_batch=args.max_batch,
                slo_ms=args.slo_ms,
                autoscaler=autoscaler,
                mix=args.fleet_mix,
                affinity_by=args.affinity_by,
                **fault_kwargs,
            )
        elif mixed:
            server = Fleet(
                args.fleet_mix,
                policy=args.policy,
                affinity_by=args.affinity_by,
            )
            report = server.serve_stream(
                arrivals,
                slo_ms=args.slo_ms,
                scheduler=args.scheduler,
                batcher=args.batcher,
                max_batch=args.max_batch,
                autoscaler=autoscaler,
                mode=args.mode,
                presorted=presorted,
                **fault_kwargs,
            )
        elif args.replicas > 1 or autoscaler is not None:
            server = Fleet(name, replicas=args.replicas, policy=args.policy)
            report = server.serve_stream(
                arrivals,
                slo_ms=args.slo_ms,
                scheduler=args.scheduler,
                batcher=args.batcher,
                max_batch=args.max_batch,
                autoscaler=autoscaler,
                mode=args.mode,
                presorted=presorted,
                **fault_kwargs,
            )
        else:
            report = ServingEngine(name).serve_stream(
                arrivals,
                slo_ms=args.slo_ms,
                scheduler=args.scheduler,
                batcher=args.batcher,
                max_batch=args.max_batch,
                mode=args.mode,
                presorted=presorted,
                **fault_kwargs,
            )
        n_requests = report.n_requests
        row = [
            name,
            report.mean_service_ms,
            report.p50_ms,
            report.p99_ms,
            report.mean_queue_delay_ms,
            round(report.max_rate_per_s, 1),
            f"{100.0 * report.slo_attainment:.1f}%",
            "SATURATED" if report.saturated else
            ("yes" if report.slo_attained else "NO"),
        ]
        if batched:
            row.insert(2, round(report.mean_batch_size, 2))
            row.insert(3, f"{100.0 * report.padding_waste_frac:.1f}%")
        if mixed:
            row.append(round(report.joules_per_request, 6))
            row.append(round(report.cost_usd_per_1m_requests, 4))
        rows.append(row)
        if len(report.tenants) > 1:
            breakdowns.append(_tenant_breakdown_table(name, report, args.slo_ms))
        if report.scale_events:
            breakdowns.append(_scale_events_table(name, report))
        if report.fault_stats.any:
            s = report.fault_stats
            breakdowns.append(
                f"[{name} fault injection ({report.faults}): "
                f"crashes {s.crashes} "
                f"(downtime {s.downtime_s * 1e3:.3f} ms), "
                f"stragglers {s.stragglers}, preemptions {s.preemptions}, "
                f"retries {s.retries}, timeouts {s.timeouts}, "
                f"hedges {s.hedges} ({s.hedge_wins} won)]"
            )
    title = (
        f"Streaming {desc} "
        f"({n_requests} requests, {n_replicas} replica(s), {args.policy}, "
        f"{args.scheduler}"
    )
    if batched:
        title += f", {args.batcher} batching <= {args.max_batch}"
    if autoscaler is not None:
        title += f", autoscale {args.autoscale}"
    if args.shards is not None:
        title += f", {args.shards} {args.shard_by} shard(s)"
    if args.faults != "none":
        title += f", faults {args.faults}"
    if args.mode == "summary":
        title += ", summary mode"
    title += ")"
    headers = ["platform", "service ms", "P50 ms", "P99 ms", "queue ms",
               "max req/s", "SLO attained", f"P99<={args.slo_ms}ms"]
    if batched:
        headers.insert(2, "mean batch")
        headers.insert(3, "pad waste")
    if mixed:
        headers.extend(["J/req", "$/1M req"])
    main_table = format_table(headers, rows, title=title)
    parts = [main_table, *breakdowns]
    if args.record_trace:
        parts.append(f"[trace recorded: {args.record_trace}]")
    return "\n\n".join(parts)


def _parse_listen(spec: str):
    """Parse ``--listen HOST:PORT`` or ``--listen unix:PATH``."""
    from repro.errors import ServingError

    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ServingError("bad --listen spec: unix: needs a socket path")
        return ("unix", path, None)
    host, sep, port_text = spec.rpartition(":")
    try:
        if not sep or not host:
            raise ValueError
        port = int(port_text)
        if not 0 <= port <= 65535:
            raise ValueError
    except ValueError:
        raise ServingError(
            f"bad --listen spec {spec!r}; expected HOST:PORT or unix:PATH"
        ) from None
    return ("tcp", host, port)


async def _live_clients(server, bound, requests, n_clients: int):
    """Drive ``n_clients`` concurrent closed-loop clients to completion.

    Each client owns a round-robin slice of the request stream and
    submits it one request at a time, awaiting every response before
    sending the next — in-process via ``server.submit`` or, when
    ``bound`` names a listening socket, over a real connection speaking
    the JSONL protocol.
    """
    import asyncio
    import json

    from repro.errors import ServingError
    from repro.serving import request_to_json

    async def in_process(mine):
        return [await server.submit(req) for req in mine]

    async def over_socket(mine):
        kind, host, port = bound
        if kind == "unix":
            reader, writer = await asyncio.open_unix_connection(host)
        else:
            reader, writer = await asyncio.open_connection(host, port)
        replies = []
        for req in mine:
            writer.write(
                (json.dumps(request_to_json(req)) + "\n").encode()
            )
            await writer.drain()
            reply = json.loads(await reader.readline())
            if not reply.get("ok"):
                raise ServingError(f"server refused a request: {reply.get('error')}")
            replies.append(reply)
        writer.close()
        await writer.wait_closed()
        return replies

    drive = in_process if bound is None else over_socket
    slices = [requests[i::n_clients] for i in range(n_clients)]
    await asyncio.gather(*(drive(part) for part in slices if part))


def _serve_live_table(args: argparse.Namespace, t, names: list[str]) -> str:
    """--clients N: a live-server smoke — N concurrent asyncio clients.

    Builds the same arrival stream the simulator would replay, serves it
    through a :class:`~repro.serving.server.ServingServer` (over the
    socket when --listen is also given, in-process otherwise) on a
    virtual clock, drains, and reports the server's stream summary plus
    the conservation check (accepted == served == answered).
    """
    import asyncio

    from repro.errors import ServingError
    from repro.harness.report import format_table
    from repro.serving.server import ServingServer

    make_arrivals, desc = _build_stream(args, t)
    requests = list(make_arrivals())
    bound_spec = _parse_listen(args.listen) if args.listen else None

    async def run_one(name: str):
        server = ServingServer(
            name,
            replicas=args.replicas,
            scheduler=args.scheduler,
            batcher=args.batcher,
            max_batch=args.max_batch,
            slo_ms=args.slo_ms,
            timeout_ms=args.timeout_ms,
        )
        await server.start()
        bound = None
        if bound_spec is not None:
            kind, host, port = bound_spec
            if kind == "unix":
                bound = ("unix", await server.listen_unix(host), None)
            else:
                bound = ("tcp", *await server.listen(host, port))
        await _live_clients(server, bound, requests, args.clients)
        await server.drain()
        return server

    rows = []
    for name in names:
        server = asyncio.run(run_one(name))
        summary = server.summary
        if server.accepted != len(requests) or server.served != len(requests):
            raise ServingError(
                f"live serving lost requests on {name}: accepted "
                f"{server.accepted}, served {server.served} of {len(requests)}"
            )
        rows.append(
            [
                name,
                summary.n_requests,
                round(summary.mean_service_ms, 3),
                round(summary.p50_ms, 3),
                round(summary.p99_ms, 3),
                round(summary.mean_batch_size, 2),
                f"{100.0 * summary.slo_attainment:.1f}%",
                "yes",
            ]
        )
    transport = "socket" if args.listen else "in-process"
    title = (
        f"Live serving {desc} ({len(requests)} requests, {args.clients} "
        f"{transport} client(s), {args.replicas} replica(s), "
        f"{args.scheduler}, {args.batcher} batching)"
    )
    return format_table(
        ["platform", "served", "service ms", "P50 ms", "P99 ms",
         "mean batch", "SLO attained", "drained"],
        rows,
        title=title,
    )


def _serve_listen_forever(args: argparse.Namespace, t) -> str:
    """--listen without --clients: serve real clients until interrupted.

    Runs on a real (wall) clock; Ctrl-C triggers the graceful drain and
    the command exits with the stream summary of everything served.
    """
    import asyncio

    from repro.serving.server import RealClock, ServingServer

    kind, host, port = _parse_listen(args.listen)
    box: dict = {}

    async def run() -> None:
        server = ServingServer(
            args.platform,
            replicas=args.replicas,
            scheduler=args.scheduler,
            batcher=args.batcher,
            max_batch=args.max_batch,
            slo_ms=args.slo_ms,
            clock=RealClock(),
            timeout_ms=args.timeout_ms,
        )
        await server.start()
        box["server"] = server
        if kind == "unix":
            where = await server.listen_unix(host)
        else:
            bhost, bport = await server.listen(host, port)
            where = f"{bhost}:{bport}"
        print(
            f"serving {args.platform} on {where} "
            f"(JSONL trace schema; Ctrl-C to drain)",
            file=sys.stderr,
            flush=True,
        )
        try:
            while True:
                await asyncio.sleep(3600)
        finally:
            await server.drain()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    server = box.get("server")
    if server is None or not server.served:
        return "live server drained: nothing served"
    summary = server.summary
    return (
        f"live server drained: {summary.n_requests} served, "
        f"P50 {summary.p50_ms:.3f} ms, P99 {summary.p99_ms:.3f} ms, "
        f"SLO attained {100.0 * summary.slo_attainment:.1f}%"
    )


def _cmd_all(args: argparse.Namespace) -> str:
    from repro.harness import (
        figure1_3_footprints,
        figure4_fragmentation,
        figure6_pcu_timing,
        figure7_layouts,
        table3,
        table4,
        table5,
        table6,
        table7,
    )

    parts = [
        table3(), table4(), table5(), table6().text, table7(),
        figure1_3_footprints(), figure4_fragmentation(),
        figure6_pcu_timing(), figure7_layouts(),
    ]
    return "\n\n".join(parts)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from 'Serving RNNs Efficiently "
        "with a Spatial Accelerator' (SysML 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("table3", "table4", "table5", "table6"):
        sub.add_parser(name, help=f"regenerate {name}").set_defaults(
            fn=_cmd_table(name)
        )
    table7_parser = sub.add_parser(
        "table7",
        help="regenerate table7 (per-task DSE parameters)",
        description="Run the per-task chip DSE and print Table 7: "
        "Brainwave's fixed parameters, the reconstructed paper "
        "parameters, and the DSE optimum per DeepBench task.",
    )
    table7_parser.add_argument(
        "--pass-axis",
        action="store_true",
        help="also search the optimization-pass axis (gate fusion x "
        "double buffering) and report which pass config wins per task",
    )
    table7_parser.add_argument(
        "--dse-workers",
        type=int,
        default=None,
        metavar="N",
        help="evaluate each task's parameter sweep on an N-process pool; "
        "bit-identical results for any worker count (default: sequential)",
    )
    table7_parser.set_defaults(fn=_cmd_table7)
    for cli_name, fn_name in (
        ("figure1_3", "figure1_3_footprints"),
        ("figure4", "figure4_fragmentation"),
        ("figure6", "figure6_pcu_timing"),
        ("figure7", "figure7_layouts"),
    ):
        sub.add_parser(cli_name, help=f"regenerate {cli_name}").set_defaults(
            fn=_cmd_figure(fn_name)
        )
    sub.add_parser("claims", help="check the abstract's claims").set_defaults(
        fn=_cmd_claims
    )

    # Choices come from the live registries, so platforms, schedulers,
    # and batchers registered by plugins show up in --help automatically.
    from repro.serving import (
        AFFINITY_KEYS,
        SCHEDULING_POLICIES,
        available_batchers,
        available_fault_policies,
        available_platforms,
        available_schedulers,
    )

    serve = sub.add_parser(
        "serve",
        help="serve one task on a registered platform (default: all)",
        description="Serve a DeepBench task through the serving engine. "
        "With --stream, run a Poisson request stream through the "
        "discrete-event queue simulation and report P50/P99 against the "
        "SLO.",
        epilog="The --mix mini-grammar "
        "(kind:hidden[:timesteps][@slo_ms][^priority]), the sharded "
        "multi-core replay (--shards/--workers/--shard-by), the live "
        "asyncio frontend (--listen/--clients), and the full serving "
        "CLI reference are documented in docs/CLI.md.",
    )
    serve.add_argument("kind", choices=["lstm", "gru"], nargs="?", default="lstm")
    serve.add_argument("hidden", type=int, nargs="?", default=512)
    serve.add_argument("timesteps", type=int, nargs="?", default=None)
    serve.add_argument(
        "--platform",
        metavar="NAME",
        help="registered platform name, one of: "
        f"{', '.join(available_platforms())} "
        "(default: every registered platform)",
    )
    serve.add_argument(
        "--stream", action="store_true", help="simulate a Poisson request stream"
    )
    serve.add_argument(
        "--rate", type=float, default=400.0, help="stream arrival rate, req/s"
    )
    serve.add_argument(
        "--slo-ms", type=float, default=5.0, help="latency SLO for the stream"
    )
    serve.add_argument(
        "--requests",
        type=_request_count,
        default=1000,
        help="number of stream requests (scientific notation welcome: 1e6)",
    )
    serve.add_argument(
        "--mode",
        choices=("full", "summary"),
        default=None,
        help="stream accounting: 'full' materializes every response "
        "(bit-identical to the classic report); 'summary' streams "
        "arrivals lazily through O(1)-memory online statistics — the "
        "mode for million-request runs (see docs/CLI.md). Default: "
        "full, or summary when --shards is given (sharded runs merge "
        "summaries and reject an explicit --mode full)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="split the stream into N shards, simulate each on its own "
        "event loop in a multiprocessing pool, and merge the per-shard "
        "summaries — exact counter parity with the single-process run "
        "(stream mode; implies --mode summary)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --shards (default: min(shards, CPUs)); "
        "a pure throughput knob — the merged report is identical for "
        "any worker count",
    )
    serve.add_argument(
        "--shard-by",
        choices=("replica", "tenant", "hash"),
        default="replica",
        help="how --shards partitions the stream: 'replica' by arrival "
        "position (bit-identical to a round-robin fleet), 'tenant' "
        "keeps each tenant on one shard, 'hash' spreads by request id",
    )
    serve.add_argument(
        "--listen",
        metavar="HOST:PORT|unix:PATH",
        help="start the live asyncio server speaking the JSONL trace "
        "schema on a TCP or UNIX socket; alone it serves until Ctrl-C "
        "(real clock), with --clients it runs a socket smoke test and "
        "exits",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=None,
        metavar="C",
        help="drive the live server with C concurrent closed-loop asyncio "
        "clients (over the --listen socket if given, else in-process) "
        "and report the drained stream summary",
    )
    serve.add_argument("--seed", type=int, default=0, help="stream arrival seed")
    serve.add_argument(
        "--replicas", type=int, default=1, help="fleet replicas (stream mode)"
    )
    serve.add_argument(
        "--fleet-mix",
        metavar="SPEC",
        help="heterogeneous fleet roster as comma-separated "
        "name[:count] entries (e.g. plasticine:2,brainwave:1,gpu:1); "
        "replaces --platform/--replicas, dispatches by projected "
        "completion under each replica's own cost model, and adds "
        "energy (J/req) and TCO ($/1M requests) columns (stream mode)",
    )
    serve.add_argument(
        "--policy",
        choices=SCHEDULING_POLICIES,
        default="least-loaded",
        help="fleet dispatch policy (stream mode); 'affinity' pins each "
        "--affinity-by key to the platform tier that first served it",
    )
    serve.add_argument(
        "--affinity-by",
        choices=AFFINITY_KEYS,
        default="task",
        help="routing key for --policy affinity: pin by task shape, "
        "tenant, or sequence-length band",
    )
    serve.add_argument(
        "--plan-capacity",
        action="store_true",
        help="run the capacity-planner DSE instead of serving: search "
        "fleet size x platform mix (--fleet-mix narrows the platform "
        "set; --replicas caps the size, min 3) for the cheapest fleet "
        "holding P99 < --slo-ms on a diurnal workload peaking at "
        "--rate req/s, and print the cost/latency frontier",
    )
    serve.add_argument(
        "--dse-workers",
        type=int,
        default=None,
        metavar="N",
        help="evaluate --plan-capacity candidate fleets on an N-process "
        "pool; a pure throughput knob — the plan is bit-identical for "
        "any worker count (default: sequential)",
    )
    serve.add_argument(
        "--dse-prune",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="abort candidate fleets early once enough requests have "
        "clearly missed the SLO that P99 provably cannot meet it; "
        "exact — the frontier and chosen fleet never change "
        "(--no-dse-prune replays every candidate in full)",
    )
    serve.add_argument(
        "--dse-cache",
        metavar="DIR",
        help="cache --plan-capacity results on disk keyed by a workload/"
        "space fingerprint; a repeat run with identical inputs loads "
        "the plan instead of re-simulating",
    )
    serve.add_argument(
        "--scheduler",
        choices=available_schedulers(),
        default="fifo",
        help="per-replica queue discipline (stream mode)",
    )
    serve.add_argument(
        "--batcher",
        choices=available_batchers(),
        default="none",
        help="per-replica dynamic batching policy (stream mode); "
        "'none' serves batch-1 like the paper",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=8,
        help="batch-size cap for the batching policy (stream mode)",
    )
    serve.add_argument(
        "--autoscale",
        metavar="MIN:MAX",
        help="autoscale fleet replicas between MIN and MAX against queue "
        "depth and SLO pressure (stream mode; starts at MIN)",
    )
    serve.add_argument(
        "--faults",
        choices=available_fault_policies(),
        default="none",
        help="inject seeded hardware faults into the simulated stream: "
        "replica crashes ('crash'), heavy-tail stragglers "
        "('straggler'), priority preemption ('preempt'), or all three "
        "('chaos'); 'none' is bit-identical to no injection at all "
        "(stream mode)",
    )
    serve.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the fault timeline: the same seed replays the "
        "same crashes and stragglers run after run",
    )
    serve.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="per-attempt request timeout: a stream request still "
        "unfinished this long after arrival is re-dispatched "
        "(--retries) or recorded as a timeout; with --clients/--listen "
        "it bounds each live submit in wall time instead",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-dispatch budget after a --timeout-ms expiry before a "
        "request is recorded as a timeout (stream mode)",
    )
    serve.add_argument(
        "--hedge-ms",
        type=float,
        default=None,
        help="launch a duplicate copy of any request still unfinished "
        "this long after arrival; first completion wins (stream mode)",
    )
    serve.add_argument(
        "--mix",
        help="multi-tenant workload: comma-separated "
        "kind:hidden[:timesteps[dDECODER]][:layers][@slo_ms][^priority] "
        "specs (see docs/CLI.md) — e.g. lstm:1024:30d30:2 is a 2-layer "
        "seq2seq; --rate and --requests are split evenly across tenants",
    )
    serve.add_argument(
        "--length-dist",
        metavar="SPEC",
        help="per-request sequence-length distribution applied to every "
        "generated tenant stream: fixed:T, uniform:LO:HI, "
        "zipf:LO:HI[:ALPHA], or trace:PATH (see docs/CLI.md); pairs "
        "with the length-aware 'pad'/'bucket' batchers",
    )
    serve.add_argument(
        "--trace",
        help="replay a JSONL trace recorded with --record-trace "
        "(overrides --mix and the generated stream)",
    )
    serve.add_argument(
        "--record-trace",
        help="write the generated arrival stream to a JSONL trace file",
    )
    serve.set_defaults(fn=_cmd_serve)

    sub.add_parser("all", help="everything (slow)").set_defaults(fn=_cmd_all)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        print(args.fn(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0
