"""Command-line interface: regenerate any table or figure.

Usage::

    python -m repro table3|table4|table5|table6|table7
    python -m repro figure1_3|figure4|figure6|figure7
    python -m repro claims           # the abstract's headline claims
    python -m repro serve lstm 1024  # one task on all four platforms
    python -m repro all              # everything (slow: runs the DSE)
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def _cmd_table(name: str) -> Callable[[argparse.Namespace], str]:
    def run(args: argparse.Namespace) -> str:
        from repro.harness import tables

        fn = getattr(tables, name)
        out = fn()
        return out.text if hasattr(out, "text") else out

    return run


def _cmd_figure(name: str) -> Callable[[argparse.Namespace], str]:
    def run(args: argparse.Namespace) -> str:
        from repro.harness import figures

        return getattr(figures, name)()

    return run


def _cmd_claims(args: argparse.Namespace) -> str:
    from repro.analysis.efficiency import abstract_claims

    return abstract_claims().text


def _cmd_serve(args: argparse.Namespace) -> str:
    from repro.api import (
        serve_on_brainwave,
        serve_on_cpu,
        serve_on_gpu,
        serve_on_plasticine,
    )
    from repro.harness.report import format_table
    from repro.workloads.deepbench import task

    t = task(args.kind, args.hidden, args.timesteps)
    rows = []
    plat = serve_on_plasticine(t)
    for res in (serve_on_cpu(t), serve_on_gpu(t), serve_on_brainwave(t), plat):
        rows.append(
            [
                res.platform,
                res.latency_ms,
                res.effective_tflops,
                plat.speedup_over(res) if res is not plat else 1.0,
                res.power_w if res.power_w is not None else "-",
            ]
        )
    return format_table(
        ["platform", "latency ms", "eff TFLOPS", "plasticine speedup", "power W"],
        rows,
        title=f"Serving {t.name}",
    )


def _cmd_all(args: argparse.Namespace) -> str:
    from repro.harness import (
        figure1_3_footprints,
        figure4_fragmentation,
        figure6_pcu_timing,
        figure7_layouts,
        table3,
        table4,
        table5,
        table6,
        table7,
    )

    parts = [
        table3(), table4(), table5(), table6().text, table7(),
        figure1_3_footprints(), figure4_fragmentation(),
        figure6_pcu_timing(), figure7_layouts(),
    ]
    return "\n\n".join(parts)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from 'Serving RNNs Efficiently "
        "with a Spatial Accelerator' (SysML 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("table3", "table4", "table5", "table6", "table7"):
        sub.add_parser(name, help=f"regenerate {name}").set_defaults(
            fn=_cmd_table(name)
        )
    for cli_name, fn_name in (
        ("figure1_3", "figure1_3_footprints"),
        ("figure4", "figure4_fragmentation"),
        ("figure6", "figure6_pcu_timing"),
        ("figure7", "figure7_layouts"),
    ):
        sub.add_parser(cli_name, help=f"regenerate {cli_name}").set_defaults(
            fn=_cmd_figure(fn_name)
        )
    sub.add_parser("claims", help="check the abstract's claims").set_defaults(
        fn=_cmd_claims
    )

    serve = sub.add_parser("serve", help="serve one task on all platforms")
    serve.add_argument("kind", choices=["lstm", "gru"])
    serve.add_argument("hidden", type=int)
    serve.add_argument("timesteps", type=int, nargs="?", default=None)
    serve.set_defaults(fn=_cmd_serve)

    sub.add_parser("all", help="everything (slow)").set_defaults(fn=_cmd_all)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        print(args.fn(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0
