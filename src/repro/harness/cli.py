"""Command-line interface: regenerate any table or figure.

Usage::

    python -m repro table3|table4|table5|table6|table7
    python -m repro figure1_3|figure4|figure6|figure7
    python -m repro claims           # the abstract's headline claims
    python -m repro serve lstm 1024  # one task on all registered platforms
    python -m repro serve --platform plasticine          # one platform
    python -m repro serve lstm 512 --stream --rate 400 --slo-ms 5
    python -m repro all              # everything (slow: runs the DSE)
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def _cmd_table(name: str) -> Callable[[argparse.Namespace], str]:
    def run(args: argparse.Namespace) -> str:
        from repro.harness import tables

        fn = getattr(tables, name)
        out = fn()
        return out.text if hasattr(out, "text") else out

    return run


def _cmd_figure(name: str) -> Callable[[argparse.Namespace], str]:
    def run(args: argparse.Namespace) -> str:
        from repro.harness import figures

        return getattr(figures, name)()

    return run


def _cmd_claims(args: argparse.Namespace) -> str:
    from repro.analysis.efficiency import abstract_claims

    return abstract_claims().text


def _cmd_serve(args: argparse.Namespace) -> str:
    from repro.harness.report import format_table
    from repro.serving import available_platforms
    from repro.workloads.deepbench import task

    t = task(args.kind, args.hidden, args.timesteps)
    names = [args.platform] if args.platform else list(available_platforms())
    if args.stream:
        return _serve_stream_table(args, t, names)
    return _serve_once_table(t, names)


def _serve_once_table(t, names: list[str]) -> str:
    from repro.harness.report import format_table
    from repro.serving import ServingEngine

    results = {name: ServingEngine(name).serve(t).result for name in names}
    plat = results.get("plasticine")
    headers = ["platform", "latency ms", "eff TFLOPS", "power W"]
    if plat is not None:
        headers.insert(3, "plasticine speedup")
    rows = []
    for res in results.values():
        row = [
            res.platform,
            res.latency_ms,
            res.effective_tflops,
            res.power_w if res.power_w is not None else "-",
        ]
        if plat is not None:
            row.insert(3, plat.speedup_over(res))
        rows.append(row)
    return format_table(headers, rows, title=f"Serving {t.name}")


def _serve_stream_table(args: argparse.Namespace, t, names: list[str]) -> str:
    from repro.errors import ServingError
    from repro.harness.report import format_table
    from repro.serving import Fleet, ServingEngine, poisson_arrivals

    if args.replicas < 1:
        raise ServingError("--replicas must be >= 1")
    arrivals = poisson_arrivals(
        t, rate_per_s=args.rate, n_requests=args.requests, seed=args.seed
    )
    rows = []
    for name in names:
        if args.replicas > 1:
            server = Fleet(name, replicas=args.replicas, policy=args.policy)
        else:
            server = ServingEngine(name)
        report = server.serve_stream(arrivals, slo_ms=args.slo_ms)
        rows.append(
            [
                name,
                report.responses[0].service_s * 1e3,
                report.p50_ms,
                report.p99_ms,
                report.mean_queue_delay_ms,
                round(report.max_rate_per_s, 1),
                "SATURATED" if report.saturated else
                ("yes" if report.slo_attained else "NO"),
            ]
        )
    title = (
        f"Streaming {t.name} at {args.rate:.0f} req/s "
        f"({args.requests} requests, {args.replicas} replica(s), {args.policy})"
    )
    return format_table(
        ["platform", "service ms", "P50 ms", "P99 ms", "queue ms", "max req/s",
         f"P99<={args.slo_ms}ms"],
        rows,
        title=title,
    )


def _cmd_all(args: argparse.Namespace) -> str:
    from repro.harness import (
        figure1_3_footprints,
        figure4_fragmentation,
        figure6_pcu_timing,
        figure7_layouts,
        table3,
        table4,
        table5,
        table6,
        table7,
    )

    parts = [
        table3(), table4(), table5(), table6().text, table7(),
        figure1_3_footprints(), figure4_fragmentation(),
        figure6_pcu_timing(), figure7_layouts(),
    ]
    return "\n\n".join(parts)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from 'Serving RNNs Efficiently "
        "with a Spatial Accelerator' (SysML 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("table3", "table4", "table5", "table6", "table7"):
        sub.add_parser(name, help=f"regenerate {name}").set_defaults(
            fn=_cmd_table(name)
        )
    for cli_name, fn_name in (
        ("figure1_3", "figure1_3_footprints"),
        ("figure4", "figure4_fragmentation"),
        ("figure6", "figure6_pcu_timing"),
        ("figure7", "figure7_layouts"),
    ):
        sub.add_parser(cli_name, help=f"regenerate {cli_name}").set_defaults(
            fn=_cmd_figure(fn_name)
        )
    sub.add_parser("claims", help="check the abstract's claims").set_defaults(
        fn=_cmd_claims
    )

    serve = sub.add_parser(
        "serve",
        help="serve one task on a registered platform (default: all)",
        description="Serve a DeepBench task through the serving engine. "
        "With --stream, run a Poisson request stream through the FIFO "
        "queue simulation and report P50/P99 against the SLO.",
    )
    serve.add_argument("kind", choices=["lstm", "gru"], nargs="?", default="lstm")
    serve.add_argument("hidden", type=int, nargs="?", default=512)
    serve.add_argument("timesteps", type=int, nargs="?", default=None)
    serve.add_argument(
        "--platform",
        help="registered platform name (default: every registered platform)",
    )
    serve.add_argument(
        "--stream", action="store_true", help="simulate a Poisson request stream"
    )
    serve.add_argument(
        "--rate", type=float, default=400.0, help="stream arrival rate, req/s"
    )
    serve.add_argument(
        "--slo-ms", type=float, default=5.0, help="latency SLO for the stream"
    )
    serve.add_argument(
        "--requests", type=int, default=1000, help="number of stream requests"
    )
    serve.add_argument("--seed", type=int, default=0, help="stream arrival seed")
    serve.add_argument(
        "--replicas", type=int, default=1, help="fleet replicas (stream mode)"
    )
    serve.add_argument(
        "--policy",
        choices=["round-robin", "least-loaded"],
        default="least-loaded",
        help="fleet scheduling policy (stream mode)",
    )
    serve.set_defaults(fn=_cmd_serve)

    sub.add_parser("all", help="everything (slow)").set_defaults(fn=_cmd_all)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        print(args.fn(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0
