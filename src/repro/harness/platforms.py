"""Backwards-compatible alias of :mod:`repro.platforms`.

The spec registry moved to the package top level so the baseline models
can read hardware constants without importing the harness.  Import from
:mod:`repro.platforms` in new code.
"""

from __future__ import annotations

from repro.platforms import PLATFORMS, PlatformSpec, platform

__all__ = ["PlatformSpec", "PLATFORMS", "platform"]
