"""Serving-platform models for the paper's baselines (Section 3, Table 6).

Each model is an analytic/instruction-level simulator calibrated against
the paper's own published measurements; calibration constants are
documented in the module docstrings and EXPERIMENTS.md.

* :mod:`repro.baselines.machine` — memory-hierarchy machine descriptions.
* :mod:`repro.baselines.cpu` — TensorFlow ``LSTMBlockFusedCell`` /
  ``GRUBlockCell`` on Intel Xeon Skylake (fp32, AVX2, single-stream).
* :mod:`repro.baselines.gpu` — TensorFlow + cuDNN on Tesla V100 (fp16).
* :mod:`repro.baselines.brainwave` — Microsoft Brainwave on Stratix 10
  (blocked floating point, tile engines + MFU chains).
"""

from repro.baselines.machine import MemoryLevel, ProcessorMachine, TESLA_V100, XEON_SKYLAKE
from repro.baselines.cpu import CPUServingModel
from repro.baselines.gpu import GPUServingModel
from repro.baselines.brainwave import BrainwaveConfig, BrainwaveServingModel

__all__ = [
    "MemoryLevel",
    "ProcessorMachine",
    "XEON_SKYLAKE",
    "TESLA_V100",
    "CPUServingModel",
    "GPUServingModel",
    "BrainwaveConfig",
    "BrainwaveServingModel",
]
