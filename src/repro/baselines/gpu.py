"""GPU serving model: TensorFlow + cuDNN on Tesla V100 (fp16).

Section 5.2's findings, encoded here:

* cuDNN's RNN path is built on BLAS3 (matrix-matrix) kernels; at batch 1
  each "matrix-matrix" operand is a single vector, so compute utilization
  collapses and the per-step time is weight streaming from HBM plus the
  fixed kernel-chain overhead;
* "GPUs are designed for throughput oriented rather than latency
  sensitive workloads" — the ~9 us per-step kernel overhead dominates
  small models;
* the GRU H=512, T=1 outlier "is likely due to the initialization
  overhead which should not be timed" — modelled as a one-time
  ``init_overhead_s`` that only matters for single-step sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.machine import ProcessorMachine, TESLA_V100
from repro.workloads.deepbench import RNNTask

__all__ = ["GPUServingModel", "GPUStepBreakdown"]

#: fp16 storage on the GPU (Table 5).
_BYTES_PER_WEIGHT = 2

#: Fraction of peak fp16 FLOPS cuDNN reaches on batch-1 MVM shapes —
#: BLAS3 kernels padding the vector to a tile (Section 3.1's MMM/MMA
#: underutilization).
_BATCH1_COMPUTE_EFFICIENCY = 0.10


@dataclass(frozen=True)
class GPUStepBreakdown:
    """Per-step time decomposition."""

    stream_s: float
    compute_s: float
    overhead_s: float

    @property
    def total_s(self) -> float:
        return max(self.stream_s, self.compute_s) + self.overhead_s


@dataclass(frozen=True)
class GPUServingModel:
    """Latency model for cuDNN RNN serving on a GPU."""

    machine: ProcessorMachine = TESLA_V100

    def weight_bytes(self, task: RNNTask) -> float:
        return task.weight_bytes(_BYTES_PER_WEIGHT)

    def step_breakdown(self, task: RNNTask) -> GPUStepBreakdown:
        """One cell step: a stacked model runs one per layer per time
        step, each streaming its own layer's weights from HBM."""
        wbytes = task.cell_weight_bytes(_BYTES_PER_WEIGHT)
        stream = self.machine.stream_seconds(wbytes)
        flops = task.shape.mvm_flops_per_step()
        compute = self.machine.flops_seconds(flops, efficiency=_BATCH1_COMPUTE_EFFICIENCY)
        return GPUStepBreakdown(
            stream_s=stream,
            compute_s=compute,
            overhead_s=self.machine.per_step_overhead_s,
        )

    def latency_seconds(self, task: RNNTask) -> float:
        """Linear in the request's actual cell-step count (layers and
        decoder legs included); init is charged once per request."""
        step = self.step_breakdown(task).total_s
        return self.machine.init_overhead_s + task.total_steps * step

    def effective_tflops(self, task: RNNTask) -> float:
        return task.effective_tflops(self.latency_seconds(task))
