"""Microsoft Brainwave serving model (Section 3.2, Figure 2, Table 7).

Brainwave's datapath: a matrix-vector unit of ``ru`` tile engines, each
with ``hv`` dot-product engines ("native dimension") vectorized by ``rv``
lanes, achieving one ``hv x rv`` tile per cycle; a pipelined reduction/
accumulation unit; and vector multi-function units (MFUs) executing the
element-wise chain on ``hv``-wide chunks.  Weights are stored in blocked
floating point (shared 5-bit exponent per ``hv`` values).

Key structural behaviours the model reproduces:

* one MVM instruction takes ``ceil(H/hv) * ceil(R/(rv*ru))`` tile
  iterations (the paper's Section 3.2 iteration count);
* ``WxX`` and ``WhH`` are computed *separately* (not concatenated), so a
  G-gate cell dispatches ``2G`` MVM instructions per step;
* instructions dispatch through a scheduler with a fixed per-instruction
  cost; an instruction occupies the unit for
  ``max(dispatch_cost, tile_iterations)`` cycles.  This makes per-step
  latency nearly flat until tiles saturate the chain — exactly the
  behaviour in Table 6 (~700-770 cycles/step for every LSTM up to
  H=2048) — and lets Brainwave win on the largest GRUs, where Plasticine's
  lower mixed-precision peak FLOPS binds (Section 5.2);
* 2-D fragmentation: a tile covers ``hv x (rv*ru)`` even when ``H`` or
  ``R`` has a partial remainder (Figure 4a).

Calibration: ``dispatch_cycles = 54`` reproduces the published flat
region (LSTM ~700-770, GRU ~630-660 cycles/step at 250 MHz).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.platforms import PLATFORMS
from repro.precision.blocked import BW_BFP, BlockedFloatFormat
from repro.workloads.deepbench import RNNTask

__all__ = ["BrainwaveConfig", "BrainwaveServingModel", "BrainwaveStepTrace"]

#: MFU vector instructions of the fused element-wise epilogue.
#: LSTM (Figure 2): c = f*c + i*j (3), tanh(c) (1), h = o*tanh(c) (1).
#: GRU: 1-z (1), (1-z)*cand (1), z*h (1), + (1), tanh (1), r*(Uh h) (1).
_MFU_OPS = {"lstm": 5, "gru": 6}


@dataclass(frozen=True)
class BrainwaveConfig:
    """Brainwave datapath configuration (Table 7's Stratix 10 column)."""

    hv: int = 400  # native dimension (dot-product engines per tile)
    rv: int = 40  # lanes per dot-product engine
    ru: int = 6  # parallel tile engines ("# MV Tiles")
    # Table 5 achieved clock, from the single spec registry.
    clock_ghz: float = PLATFORMS["brainwave"].achieved_clock_ghz
    dispatch_cycles: int = 54
    init_cycles: int = 2600
    weight_format: BlockedFloatFormat = BW_BFP

    def __post_init__(self) -> None:
        if min(self.hv, self.rv, self.ru) < 1:
            raise ConfigError("hv, rv, ru must be >= 1")
        if self.clock_ghz <= 0:
            raise ConfigError("clock must be positive")

    def mvm_tile_iterations(self, rows: int, cols: int) -> int:
        """Iterations of one MVM instruction over a ``rows x cols`` matrix
        (Section 3.2: ``ceil(H/hv) * ceil(R/(rv*ru))``)."""
        if rows < 1 or cols < 1:
            raise ConfigError("matrix dimensions must be positive")
        row_tiles = -(-rows // self.hv)
        col_iters = -(-cols // (self.rv * self.ru))
        return row_tiles * col_iters

    def mvm_utilization(self, rows: int, cols: int) -> float:
        """Fraction of tile FLOPs doing useful work (Figure 4a's 2-D
        fragmentation: padding on both H and R)."""
        useful = rows * cols
        row_tiles = -(-rows // self.hv)
        col_iters = -(-cols // (self.rv * self.ru))
        covered = row_tiles * self.hv * col_iters * self.rv * self.ru
        return useful / covered


@dataclass(frozen=True)
class BrainwaveStepTrace:
    """Instruction-level trace of one time step."""

    mvm_instructions: int
    mfu_instructions: int
    mvm_cycles: int
    mfu_cycles: int

    @property
    def step_cycles(self) -> int:
        return self.mvm_cycles + self.mfu_cycles


@dataclass(frozen=True)
class BrainwaveServingModel:
    """Latency model for Brainwave RNN serving."""

    config: BrainwaveConfig = BrainwaveConfig()

    def step_trace(self, task: RNNTask) -> BrainwaveStepTrace:
        """Schedule one time step's instruction chain."""
        cfg = self.config
        shape = task.shape
        h, d = shape.hidden, shape.input_dim
        # 2G MVMs: Wx (H x D) and Wh (H x H) per gate, dispatched
        # sequentially per Section 3.2.
        mvm_cycles = 0
        for _gate in range(shape.gates):
            for cols in (d, h):
                iters = cfg.mvm_tile_iterations(h, cols)
                mvm_cycles += max(cfg.dispatch_cycles, iters)
        mfu_n = _MFU_OPS[task.kind]
        mfu_cycles = mfu_n * cfg.dispatch_cycles
        return BrainwaveStepTrace(
            mvm_instructions=2 * shape.gates,
            mfu_instructions=mfu_n,
            mvm_cycles=mvm_cycles,
            mfu_cycles=mfu_cycles,
        )

    def latency_seconds(self, task: RNNTask) -> float:
        """Linear in the request's actual cell-step count: a stacked or
        seq2seq request dispatches one instruction chain per cell step
        (``L * (T + T_dec)`` of them), while the scheduler init cost is
        paid once per request, not once per layer."""
        trace = self.step_trace(task)
        cycles = self.config.init_cycles + task.total_steps * trace.step_cycles
        return cycles / (self.config.clock_ghz * 1e9)

    def effective_tflops(self, task: RNNTask) -> float:
        return task.effective_tflops(self.latency_seconds(task))

    def weight_bytes(self, task: RNNTask) -> int:
        """On-chip weight footprint in blocked floating point (every
        layer of a stacked model is resident separately)."""
        return task.layers * self.config.weight_format.storage_bytes(
            task.shape.weight_count
        )

    def weights_fit_onchip(self, task: RNNTask, capacity_bytes: int) -> bool:
        return self.weight_bytes(task) <= capacity_bytes
