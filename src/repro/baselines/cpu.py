"""CPU serving model: TensorFlow fused RNN kernels on Xeon Skylake.

Section 5.2's findings, which this model encodes:

* the TF RNN kernels are not multi-threaded, and batch 1 exposes no
  parallelism outside the kernel, so one core's streaming bandwidth rules;
* every time step streams the full weight matrix (no reuse at batch 1),
  so per-step time is ``max(weight_bytes / bw(footprint), flops / peak)``
  plus a small framework overhead;
* fp32 only ("due to lack of low-precision support in both tool chain and
  platform").

The model also distinguishes the ``BasicLSTM`` graph-of-BLAS-kernels
implementation (Figure 1a) from the fused ``LSTMBlockFusedCell`` kernels:
BasicLSTM materializes every intermediate, adding per-kernel dispatch and
intermediate-buffer traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.machine import ProcessorMachine, XEON_SKYLAKE
from repro.workloads.deepbench import RNNTask

__all__ = ["CPUServingModel", "CPUStepBreakdown"]

#: fp32 storage.
_BYTES_PER_WEIGHT = 4

#: BasicLSTM (non-fused) only: per-BLAS-kernel dispatch cost and the
#: number of kernels in the unfused cell graph (Figure 1a: 2 MVMs worth of
#: blocked GEMV work split per gate, bias adds, non-linearities, and the
#: element-wise cell update all as separate TF ops).
_KERNEL_DISPATCH_S = 15e-6
_BASIC_LSTM_KERNELS = 16


@dataclass(frozen=True)
class CPUStepBreakdown:
    """Per-step time decomposition."""

    stream_s: float
    compute_s: float
    overhead_s: float

    @property
    def total_s(self) -> float:
        return max(self.stream_s, self.compute_s) + self.overhead_s


@dataclass(frozen=True)
class CPUServingModel:
    """Latency model for TF fused RNN kernels on a CPU."""

    machine: ProcessorMachine = XEON_SKYLAKE
    fused: bool = True

    def weight_bytes(self, task: RNNTask) -> float:
        return task.weight_bytes(_BYTES_PER_WEIGHT)

    def step_breakdown(self, task: RNNTask) -> CPUStepBreakdown:
        """Decompose one cell step (a stacked model runs one of these per
        layer per time step, each streaming its own layer's weights)."""
        wbytes = task.cell_weight_bytes(_BYTES_PER_WEIGHT)
        stream = self.machine.stream_seconds(wbytes)
        flops = task.shape.mvm_flops_per_step()
        compute = self.machine.flops_seconds(flops, efficiency=0.5)
        overhead = self.machine.per_step_overhead_s
        if not self.fused:
            # Unfused BasicLSTM: per-kernel dispatch plus writing/reading
            # the G pre-activation vectors (H fp32 each) through cache.
            overhead += _KERNEL_DISPATCH_S * _BASIC_LSTM_KERNELS
            intermediate = 2 * task.shape.gates * task.hidden * _BYTES_PER_WEIGHT
            stream += intermediate / (self.machine.levels[0].bandwidth_gbs * 1e9)
        return CPUStepBreakdown(stream_s=stream, compute_s=compute, overhead_s=overhead)

    def latency_seconds(self, task: RNNTask) -> float:
        """End-to-end latency of serving one sequence.

        Linear in the request's *actual* cell-step count — layers and
        encoder/decoder legs multiply the per-step cost, while the
        framework init is charged once per request, not per layer.
        """
        step = self.step_breakdown(task).total_s
        return self.machine.init_overhead_s + task.total_steps * step

    def effective_tflops(self, task: RNNTask) -> float:
        return task.effective_tflops(self.latency_seconds(task))
