"""Processor machine descriptions: memory hierarchy + peak compute.

Batch-1 RNN serving is weight-streaming bound on processors (every step
reads every weight once and the working set has no reuse within a step),
so the dominant term is ``weight_bytes / effective_bandwidth(footprint)``,
with the effective bandwidth determined by which cache level the weights
live in.  Capacities/bandwidths here are *effective single-stream* values
calibrated to the paper's Table 6 (see module docstrings of the CPU/GPU
models); hardware spec values live in :mod:`repro.platforms`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.platforms import PLATFORMS

__all__ = ["MemoryLevel", "ProcessorMachine", "XEON_SKYLAKE", "TESLA_V100"]


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the load path.

    Attributes:
        name: Level name ("L2", "L3", "HBM", ...).
        capacity_bytes: Footprints up to this size stream at this level's
            bandwidth (None = unbounded, the last level).
        bandwidth_gbs: Effective single-stream bandwidth in GB/s.
    """

    name: str
    capacity_bytes: int | None
    bandwidth_gbs: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ConfigError(f"{self.name}: bandwidth must be positive")
        if self.capacity_bytes is not None and self.capacity_bytes <= 0:
            raise ConfigError(f"{self.name}: capacity must be positive")


@dataclass(frozen=True)
class ProcessorMachine:
    """A processor platform for the streaming model."""

    name: str
    clock_ghz: float
    peak_tflops: float
    levels: tuple[MemoryLevel, ...]
    per_step_overhead_s: float
    init_overhead_s: float
    tdp_w: float | None = None

    def __post_init__(self) -> None:
        if not self.levels or self.levels[-1].capacity_bytes is not None:
            raise ConfigError("last memory level must be unbounded (capacity None)")
        caps = [lv.capacity_bytes for lv in self.levels[:-1]]
        if any(c is None for c in caps) or caps != sorted(caps):  # type: ignore[type-var]
            raise ConfigError("levels must have increasing finite capacities, last None")

    def effective_bandwidth_gbs(self, footprint_bytes: float) -> float:
        """Bandwidth of the smallest level the footprint fits in."""
        if footprint_bytes < 0:
            raise ConfigError("footprint must be >= 0")
        for level in self.levels:
            if level.capacity_bytes is None or footprint_bytes <= level.capacity_bytes:
                return level.bandwidth_gbs
        raise AssertionError("unreachable: last level is unbounded")

    def stream_seconds(self, n_bytes: float) -> float:
        """Time to stream ``n_bytes`` once at the footprint's bandwidth."""
        return n_bytes / (self.effective_bandwidth_gbs(n_bytes) * 1e9)

    def flops_seconds(self, flops: float, efficiency: float = 1.0) -> float:
        """Compute-bound time at a fraction of peak."""
        if not 0 < efficiency <= 1:
            raise ConfigError("efficiency must be in (0, 1]")
        return flops / (self.peak_tflops * 1e12 * efficiency)


_CPU_SPEC = PLATFORMS["cpu"]
_GPU_SPEC = PLATFORMS["gpu"]

#: Intel Xeon Skylake (dual core, TF 1.10 + AVX2, fp32).  Effective
#: bandwidths calibrated to Table 6: ~20 GB/s cache-resident small models,
#: ~18 GB/s mid, ~8.2 GB/s single-stream DRAM for models past ~16 MB.
#: Peak fp32: 2 cores x 2 FMA x 8 lanes x 2 ops at the Table 5 achieved
#: clock (2.0 GHz -> 128 GFLOPS); clock and TDP come from the
#: :data:`repro.platforms.PLATFORMS` registry.
XEON_SKYLAKE = ProcessorMachine(
    name="xeon-skylake",
    clock_ghz=_CPU_SPEC.achieved_clock_ghz,
    peak_tflops=2 * 2 * 8 * 2 * _CPU_SPEC.achieved_clock_ghz / 1e3,
    levels=(
        MemoryLevel("L2", 4 * 2**20, 20.0),
        MemoryLevel("L3", 16 * 2**20, 18.0),
        MemoryLevel("DRAM", None, 8.2),
    ),
    per_step_overhead_s=1e-6,
    init_overhead_s=400e-6,
    tdp_w=_CPU_SPEC.tdp_w,
)

#: NVIDIA Tesla V100 SXM2 (TF + cuDNN, fp16).  Effective HBM bandwidth for
#: cuDNN's batch-1 GEMV calibrated to 850 GB/s; 9 us kernel chain overhead
#: per step; one-time cuDNN plan/init ~390 us (the paper's GRU-512 note).
#: Achieved clock, peak TFLOPS, and TDP come from the registry.
TESLA_V100 = ProcessorMachine(
    name="tesla-v100",
    clock_ghz=_GPU_SPEC.achieved_clock_ghz,
    peak_tflops=_GPU_SPEC.peak_tflops_32bit or 0.0,
    levels=(MemoryLevel("HBM2", None, 850.0),),
    per_step_overhead_s=9e-6,
    init_overhead_s=390e-6,
    tdp_w=_GPU_SPEC.tdp_w,
)
