"""Exhaustive map-and-simulate search over a parameter space.

Since the shared DSE runner (:mod:`repro.dse.runner`) landed, the sweep
is memoized, hoisted, and parallel:

* the task *program* is built once per :class:`LoopParams` and reused
  across the pass-config axis (pass configs only affect mapping, not
  the program);
* every mapped-and-simulated point lands in a per-process LRU
  (:class:`~repro.dse.runner.EvalMemo`) keyed by ``(task family,
  params, bits, chip, pass_config)`` — the result scales exactly with
  ``timesteps`` (``total = T * cycles_per_step``), so length variants
  of one family share entries;
* :func:`search` fans parameter points onto a worker pool
  (``workers=``) in candidate order, bit-identical to the sequential
  loop, and can persist the full result to an on-disk JSON cache
  (``cache_dir=``) keyed by a space/workload fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import DSEError
from repro.dse.runner import (
    DSEStats,
    EvalMemo,
    fingerprint,
    load_cached,
    run_jobs,
    store_cached,
)
from repro.dse.space import ParameterSpace
from repro.mapping.mapper import MappedDesign, map_rnn_program
from repro.mapping.passes import PassConfig
from repro.plasticine.chip import PlasticineConfig
from repro.plasticine.simulator import simulate_pipeline
from repro.rnn.gru_loop import build_gru_program
from repro.rnn.lstm_loop import LoopParams, build_lstm_program
from repro.rnn.params import GRUWeights, LSTMWeights
from repro.workloads.deepbench import RNNTask

__all__ = ["SearchPoint", "DSEResult", "search", "build_task_program"]


def _zero_weights(task: RNNTask):
    """Weight containers backed by broadcast zero views — no allocation,
    usable for tracing/mapping (performance estimation only)."""
    shape = task.shape
    w = {
        g: np.broadcast_to(0.0, (shape.hidden, shape.concat_dim))
        for g in shape.gate_names
    }
    b = {g: np.broadcast_to(0.0, (shape.hidden,)) for g in shape.gate_names}
    cls = LSTMWeights if task.kind == "lstm" else GRUWeights
    return cls(shape=shape, w=w, b=b)


def build_task_program(task: RNNTask, params: LoopParams, *, weights=None, xs=None):
    """Build the loop-based program for a task (zero weights by default —
    sufficient for mapping and timing; pass real weights for functional
    runs)."""
    if weights is None:
        weights = _zero_weights(task)
    if xs is None:
        xs = np.broadcast_to(0.0, (task.timesteps, task.shape.input_dim))
    builder = build_lstm_program if task.kind == "lstm" else build_gru_program
    return builder(weights, xs, params)


@dataclass(frozen=True)
class SearchPoint:
    """One evaluated design point."""

    params: LoopParams
    cycles_per_step: int
    total_cycles: int
    fits: bool
    pcus_used: int
    pmus_used: int
    #: Which optimization passes produced this point (compiler axis).
    pass_config: PassConfig = PassConfig()

    @property
    def latency_s(self) -> float:
        return self.total_cycles / 1e9  # points are compared at 1 GHz


@dataclass(frozen=True)
class DSEResult:
    """Search outcome: best feasible point plus the full frontier."""

    task: RNNTask
    best: SearchPoint
    points: tuple[SearchPoint, ...] = field(repr=False)
    #: Execution counters (memo hits, program builds, workers, cache
    #: provenance).  Excluded from equality: two runs at different
    #: worker counts or cache temperatures return *equal* results.
    stats: "DSEStats | None" = field(default=None, compare=False, repr=False)

    @property
    def best_params(self) -> LoopParams:
        return self.best.params

    def feasible_points(self) -> tuple[SearchPoint, ...]:
        return tuple(p for p in self.points if p.fits)


#: Per-process memo over pure map-and-simulate results.  Keyed by
#: ``(family_key, params, bits, chip, pass_config)`` — everything the
#: mapped design depends on; ``timesteps`` is deliberately absent (the
#: record stores per-step cycles and the total is ``T * cycles_per_step``,
#: the simulator's own identity), so length variants share entries.
_MEMO = EvalMemo(maxsize=4096)

#: What the memo stores per key; ``fits`` is recomputed from the stored
#: bits so one entry serves both ``require_capacity`` policies.
_MemoRecord = tuple  # (cycles_per_step, fits_cb, fits_capacity, pcus, pmus)


def _memo_key(
    task: RNNTask,
    params: LoopParams,
    chip: PlasticineConfig,
    bits: int,
    pass_config: PassConfig,
) -> tuple:
    return (task.family_key, params, bits, chip, pass_config)


def _point_from_record(
    task: RNNTask,
    params: LoopParams,
    pass_config: PassConfig,
    record: _MemoRecord,
    *,
    require_capacity: bool,
) -> SearchPoint:
    cycles_per_step, fits_cb, fits_capacity, pcus, pmus = record
    fits = fits_cb and (fits_capacity if require_capacity else True)
    return SearchPoint(
        params=params,
        cycles_per_step=cycles_per_step,
        total_cycles=task.timesteps * cycles_per_step,
        fits=fits,
        pcus_used=pcus,
        pmus_used=pmus,
        pass_config=pass_config,
    )


def _evaluate_program(
    prog, chip: PlasticineConfig, bits: int, pass_config: PassConfig | None
) -> _MemoRecord:
    """Map and simulate one built program: the uncached inner kernel."""
    design: MappedDesign = map_rnn_program(
        prog, chip, bits=bits, pass_config=pass_config
    )
    sim = simulate_pipeline(design.graph)
    res = design.resources
    return (
        sim.cycles_per_step + sim.step_overhead,
        res.fits_compute and res.fits_bandwidth,
        res.fits_capacity,
        res.pcus_used,
        res.pmus_used,
    )


def evaluate(
    task: RNNTask,
    params: LoopParams,
    chip: PlasticineConfig,
    *,
    bits: int = 8,
    require_capacity: bool = False,
    pass_config: PassConfig | None = None,
    program=None,
    memoize: bool = True,
) -> SearchPoint:
    """Map and simulate one candidate point.

    ``program`` reuses an already-built task program (the hoist
    :func:`search` applies across the pass-config axis); ``memoize``
    consults the per-process :class:`~repro.dse.runner.EvalMemo` first
    — a hit reconstructs the point bit-identically (per-step cycles and
    resources are length-independent; the total is
    ``timesteps * cycles_per_step``, the simulator's own identity).
    """
    pc = pass_config or PassConfig()
    key = _memo_key(task, params, chip, bits, pc)
    record = _MEMO.get(key) if memoize else None
    if record is None:
        if program is None:
            program = build_task_program(task, params)
        record = _evaluate_program(program, chip, bits, pass_config)
        if memoize:
            _MEMO.put(key, record)
    return _point_from_record(
        task, params, pc, record, require_capacity=require_capacity
    )


@dataclass(frozen=True)
class _SearchJob:
    """One parameter point across the whole pass-config axis."""

    task: RNNTask
    params: LoopParams
    chip: PlasticineConfig
    bits: int
    require_capacity: bool
    pass_configs: tuple[PassConfig, ...]


def _evaluate_params(job: _SearchJob) -> tuple[list[SearchPoint], int, int]:
    """Worker entry: evaluate every pass config of one parameter point.

    Builds the task program at most once (lazily — an all-memo-hit
    point builds nothing) and returns ``(points, program_builds,
    memo_hits)`` in the space's pass-config order.
    """
    program = None
    points: list[SearchPoint] = []
    builds = hits = 0
    for pass_config in job.pass_configs:
        key = _memo_key(job.task, job.params, job.chip, job.bits, pass_config)
        record = _MEMO.get(key)
        if record is None:
            if program is None:
                program = build_task_program(job.task, job.params)
                builds += 1
            record = _evaluate_program(
                program, job.chip, job.bits, pass_config
            )
            _MEMO.put(key, record)
        else:
            hits += 1
        points.append(
            _point_from_record(
                job.task,
                job.params,
                pass_config,
                record,
                require_capacity=job.require_capacity,
            )
        )
    return points, builds, hits


def _search_fingerprint(
    task: RNNTask,
    chip: PlasticineConfig,
    space: ParameterSpace,
    bits: int,
    require_capacity: bool,
) -> str:
    return fingerprint(
        {
            "kind": "chip-dse",
            "task": {
                "kind": task.kind,
                "hidden": task.hidden,
                "timesteps": task.timesteps,
                "layers": task.layers,
                "decoder_timesteps": task.decoder_timesteps,
            },
            "chip": repr(chip),
            "bits": bits,
            "require_capacity": require_capacity,
            "space": {
                "max_hu": space.max_hu,
                "ru_choices": space.ru_choices,
                "pass_configs": [
                    (pc.fuse_gates, pc.double_buffer)
                    for pc in space.pass_configs
                ],
            },
        }
    )


def _points_from_cache(payload: dict) -> tuple[SearchPoint, ...]:
    return tuple(
        SearchPoint(
            params=LoopParams(**row["params"]),
            cycles_per_step=row["cycles_per_step"],
            total_cycles=row["total_cycles"],
            fits=row["fits"],
            pcus_used=row["pcus_used"],
            pmus_used=row["pmus_used"],
            pass_config=PassConfig(**row["pass_config"]),
        )
        for row in payload["points"]
    )


def _points_to_cache(points: "tuple[SearchPoint, ...]") -> list[dict]:
    return [
        {
            "params": {
                "hu": p.params.hu,
                "ru": p.params.ru,
                "rv": p.params.rv,
                "hv": p.params.hv,
            },
            "cycles_per_step": p.cycles_per_step,
            "total_cycles": p.total_cycles,
            "fits": p.fits,
            "pcus_used": p.pcus_used,
            "pmus_used": p.pmus_used,
            "pass_config": {
                "fuse_gates": p.pass_config.fuse_gates,
                "double_buffer": p.pass_config.double_buffer,
            },
        }
        for p in points
    ]


def _result_from_points(
    task: RNNTask,
    chip: PlasticineConfig,
    points: "tuple[SearchPoint, ...]",
    stats: DSEStats,
) -> DSEResult:
    if not points:
        raise DSEError(f"no candidate points for {task.name}")
    feasible = [p for p in points if p.fits]
    if not feasible:
        raise DSEError(f"no feasible design for {task.name} on {chip.name}")
    best = min(feasible, key=lambda p: (p.total_cycles, p.pcus_used))
    return DSEResult(task=task, best=best, points=points, stats=stats)


def search(
    task: RNNTask,
    chip: PlasticineConfig | None = None,
    space: ParameterSpace | None = None,
    *,
    bits: int = 8,
    require_capacity: bool = False,
    workers: int | None = None,
    cache_dir: "str | Path | None" = None,
) -> DSEResult:
    """Search the space, returning the latency-optimal feasible point.

    Ties break toward fewer PCUs (cheaper design, same speed).

    Args:
        require_capacity: Also require the weights to fit on-chip; off by
            default because the paper's largest tasks exceed the 31.5 MB
            scratchpad yet are still evaluated (see EXPERIMENTS.md).
        workers: Fan parameter points onto this many processes
            (:func:`~repro.dse.runner.run_jobs`; default sequential).
            The point list, best point, and every field are
            bit-identical at any worker count — purely wall clock.
        cache_dir: On-disk JSON result cache keyed by a fingerprint of
            (task, chip, bits, space).  A hit returns the persisted
            sweep without mapping anything; delete the directory to
            invalidate after compiler changes.
    """
    chip = chip or PlasticineConfig.rnn_serving()
    space = space or ParameterSpace()
    stats = DSEStats(workers=workers or 1)
    digest = None
    if cache_dir is not None:
        digest = _search_fingerprint(task, chip, space, bits, require_capacity)
        payload = load_cached(cache_dir, "dse", digest)
        if payload is not None:
            points = _points_from_cache(payload)
            stats.candidates = len(points)
            stats.from_cache = True
            return _result_from_points(task, chip, points, stats)
    jobs = [
        _SearchJob(
            task=task,
            params=params,
            chip=chip,
            bits=bits,
            require_capacity=require_capacity,
            pass_configs=space.pass_configs,
        )
        for params in space.candidates(task, chip, bits)
    ]
    points: list[SearchPoint] = []
    for job_points, builds, hits in run_jobs(
        _evaluate_params, jobs, workers=workers
    ):
        points.extend(job_points)
        stats.program_builds += builds
        stats.memo_hits += hits
    stats.candidates = len(points)
    stats.evaluated = len(points) - stats.memo_hits
    result = _result_from_points(task, chip, tuple(points), stats)
    if cache_dir is not None and digest is not None:
        store_cached(
            cache_dir,
            "dse",
            digest,
            {"task": task.name, "points": _points_to_cache(result.points)},
        )
    return result
