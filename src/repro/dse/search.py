"""Exhaustive map-and-simulate search over a parameter space."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DSEError
from repro.dse.space import ParameterSpace
from repro.mapping.mapper import MappedDesign, map_rnn_program
from repro.mapping.passes import PassConfig
from repro.plasticine.chip import PlasticineConfig
from repro.plasticine.simulator import simulate_pipeline
from repro.rnn.gru_loop import build_gru_program
from repro.rnn.lstm_loop import LoopParams, build_lstm_program
from repro.rnn.params import GRUWeights, LSTMWeights
from repro.workloads.deepbench import RNNTask

__all__ = ["SearchPoint", "DSEResult", "search", "build_task_program"]


def _zero_weights(task: RNNTask):
    """Weight containers backed by broadcast zero views — no allocation,
    usable for tracing/mapping (performance estimation only)."""
    shape = task.shape
    w = {
        g: np.broadcast_to(0.0, (shape.hidden, shape.concat_dim))
        for g in shape.gate_names
    }
    b = {g: np.broadcast_to(0.0, (shape.hidden,)) for g in shape.gate_names}
    cls = LSTMWeights if task.kind == "lstm" else GRUWeights
    return cls(shape=shape, w=w, b=b)


def build_task_program(task: RNNTask, params: LoopParams, *, weights=None, xs=None):
    """Build the loop-based program for a task (zero weights by default —
    sufficient for mapping and timing; pass real weights for functional
    runs)."""
    if weights is None:
        weights = _zero_weights(task)
    if xs is None:
        xs = np.broadcast_to(0.0, (task.timesteps, task.shape.input_dim))
    builder = build_lstm_program if task.kind == "lstm" else build_gru_program
    return builder(weights, xs, params)


@dataclass(frozen=True)
class SearchPoint:
    """One evaluated design point."""

    params: LoopParams
    cycles_per_step: int
    total_cycles: int
    fits: bool
    pcus_used: int
    pmus_used: int
    #: Which optimization passes produced this point (compiler axis).
    pass_config: PassConfig = PassConfig()

    @property
    def latency_s(self) -> float:
        return self.total_cycles / 1e9  # points are compared at 1 GHz


@dataclass(frozen=True)
class DSEResult:
    """Search outcome: best feasible point plus the full frontier."""

    task: RNNTask
    best: SearchPoint
    points: tuple[SearchPoint, ...] = field(repr=False)

    @property
    def best_params(self) -> LoopParams:
        return self.best.params

    def feasible_points(self) -> tuple[SearchPoint, ...]:
        return tuple(p for p in self.points if p.fits)


def evaluate(
    task: RNNTask,
    params: LoopParams,
    chip: PlasticineConfig,
    *,
    bits: int = 8,
    require_capacity: bool = False,
    pass_config: PassConfig | None = None,
) -> SearchPoint:
    """Map and simulate one candidate point."""
    prog = build_task_program(task, params)
    design: MappedDesign = map_rnn_program(
        prog, chip, bits=bits, pass_config=pass_config
    )
    sim = simulate_pipeline(design.graph)
    res = design.resources
    fits = res.fits_compute and res.fits_bandwidth
    if require_capacity:
        fits = fits and res.fits_capacity
    return SearchPoint(
        params=params,
        cycles_per_step=sim.cycles_per_step + sim.step_overhead,
        total_cycles=sim.total_cycles,
        fits=fits,
        pcus_used=res.pcus_used,
        pmus_used=res.pmus_used,
        pass_config=pass_config or PassConfig(),
    )


def search(
    task: RNNTask,
    chip: PlasticineConfig | None = None,
    space: ParameterSpace | None = None,
    *,
    bits: int = 8,
    require_capacity: bool = False,
) -> DSEResult:
    """Search the space, returning the latency-optimal feasible point.

    Ties break toward fewer PCUs (cheaper design, same speed).

    Args:
        require_capacity: Also require the weights to fit on-chip; off by
            default because the paper's largest tasks exceed the 31.5 MB
            scratchpad yet are still evaluated (see EXPERIMENTS.md).
    """
    chip = chip or PlasticineConfig.rnn_serving()
    space = space or ParameterSpace()
    points = [
        evaluate(
            task,
            params,
            chip,
            bits=bits,
            require_capacity=require_capacity,
            pass_config=pass_config,
        )
        for params, pass_config in space.configurations(task, chip, bits)
    ]
    if not points:
        raise DSEError(f"no candidate points for {task.name}")
    feasible = [p for p in points if p.fits]
    if not feasible:
        raise DSEError(f"no feasible design for {task.name} on {chip.name}")
    best = min(feasible, key=lambda p: (p.total_cycles, p.pcus_used))
    return DSEResult(task=task, best=best, points=tuple(points))
