"""Design-space exploration over the loop knobs (hu, ru, rv).

Spatial "exposes important design parameters such as blocking size and
unrolling factor ... users can easily tune their design either manually or
with an external DSE engine" (Section 2.3).  This package is that engine
for the RNN-serving designs:

* :mod:`repro.dse.space` — enumerate candidate parameter points.
* :mod:`repro.dse.search` — map + simulate each feasible point, keep the
  latency-optimal one.
* :mod:`repro.dse.tuner` — per-task selection, plus the paper's published
  and reconstructed Table 7 parameter sets.
* :mod:`repro.dse.capacity` — the same idiom one level up: search fleet
  size × platform mix × scheduler × batcher for the cheapest fleet that
  holds a P99 SLO on a diurnal serving workload.
* :mod:`repro.dse.runner` — the shared execution engine both searches
  route through: ordered worker-pool fan-out (bit-identical to the
  sequential loops at any worker count), exact SLO pruning for the
  capacity planner, and evaluation memoization (in-process LRU plus an
  on-disk fingerprinted result cache) for the chip tuner.
"""

from repro.dse.space import ParameterSpace
from repro.dse.runner import DSEStats, EvalMemo, PruningSummary, prune_threshold
from repro.dse.search import DSEResult, SearchPoint, search
from repro.dse.tuner import paper_params, tune
from repro.dse.capacity import CapacityPlan, CapacityPoint, FleetSpace, plan_capacity

__all__ = [
    "ParameterSpace",
    "search",
    "SearchPoint",
    "DSEResult",
    "DSEStats",
    "EvalMemo",
    "PruningSummary",
    "prune_threshold",
    "tune",
    "paper_params",
    "FleetSpace",
    "CapacityPoint",
    "CapacityPlan",
    "plan_capacity",
]
