"""Design-space exploration over the loop knobs (hu, ru, rv).

Spatial "exposes important design parameters such as blocking size and
unrolling factor ... users can easily tune their design either manually or
with an external DSE engine" (Section 2.3).  This package is that engine
for the RNN-serving designs:

* :mod:`repro.dse.space` — enumerate candidate parameter points.
* :mod:`repro.dse.search` — map + simulate each feasible point, keep the
  latency-optimal one.
* :mod:`repro.dse.tuner` — per-task selection, plus the paper's published
  and reconstructed Table 7 parameter sets.
* :mod:`repro.dse.capacity` — the same idiom one level up: search fleet
  size × platform mix × scheduler × batcher for the cheapest fleet that
  holds a P99 SLO on a diurnal serving workload.
"""

from repro.dse.space import ParameterSpace
from repro.dse.search import DSEResult, SearchPoint, search
from repro.dse.tuner import paper_params, tune
from repro.dse.capacity import CapacityPlan, CapacityPoint, FleetSpace, plan_capacity

__all__ = [
    "ParameterSpace",
    "search",
    "SearchPoint",
    "DSEResult",
    "tune",
    "paper_params",
    "FleetSpace",
    "CapacityPoint",
    "CapacityPlan",
    "plan_capacity",
]
