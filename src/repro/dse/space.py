"""Candidate parameter points for the loop-based designs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import DSEError
from repro.mapping.passes import PassConfig
from repro.plasticine.chip import PlasticineConfig
from repro.rnn.lstm_loop import LoopParams
from repro.workloads.deepbench import RNNTask

__all__ = ["ParameterSpace"]


@dataclass(frozen=True)
class ParameterSpace:
    """The (hu, ru) grid searched for one task on one chip.

    ``rv`` is pinned to what one PCU consumes per cycle at the chosen
    precision (lanes x packing = 64 at 8-bit): a smaller rv wastes lanes,
    a larger one gangs PCUs per MapReduce unit, which the search covers
    through ``ru`` instead.

    ``pass_configs`` is the compiler axis: which optimization-pass
    configurations (:class:`~repro.mapping.passes.PassConfig`) to try at
    every loop-parameter point.  The default searches loop parameters
    only; pass e.g. ``ParameterSpace.with_pass_axis()`` to also search
    ``fuse_gates`` / ``double_buffer``.
    """

    max_hu: int = 12
    ru_choices: tuple[int, ...] = (1, 2, 4, 8, 16)
    pass_configs: tuple[PassConfig, ...] = (PassConfig(),)

    def __post_init__(self) -> None:
        if self.max_hu < 1 or not self.ru_choices:
            raise DSEError("empty parameter space")
        if any(r < 1 for r in self.ru_choices):
            raise DSEError("ru must be >= 1")
        if not self.pass_configs:
            raise DSEError("empty pass-config axis")

    @classmethod
    def with_pass_axis(cls, **kwargs) -> "ParameterSpace":
        """A space that also searches every optimization-pass combination."""
        return cls(
            pass_configs=(
                PassConfig(),
                PassConfig(fuse_gates=True),
                PassConfig(double_buffer=True),
                PassConfig(fuse_gates=True, double_buffer=True),
            ),
            **kwargs,
        )

    def rv_for(self, chip: PlasticineConfig, bits: int) -> int:
        return chip.dot_lanes_per_pcu(bits)

    def candidates(
        self, task: RNNTask, chip: PlasticineConfig, bits: int = 8
    ) -> Iterator[LoopParams]:
        """Yield plausible points, cheapest-to-build pruning applied:

        * ``hu`` never exceeds H (no point unrolling past the loop extent);
        * ``ru`` never exceeds the number of rv-blocks in the reduction
          (extra units would sit idle);
        * an optimistic PCU lower bound (G * hu * ru map-reduce units)
          must fit the chip.
        """
        rv = self.rv_for(chip, bits)
        shape = task.shape
        blocks = -(-shape.concat_dim // rv)
        for hu in range(1, min(self.max_hu, shape.hidden) + 1):
            for ru in self.ru_choices:
                if ru > blocks:
                    continue
                if shape.gates * hu * ru > chip.usable_pcus:
                    continue
                yield LoopParams(hu=hu, ru=ru, rv=rv)

    def configurations(
        self, task: RNNTask, chip: PlasticineConfig, bits: int = 8
    ) -> Iterator[tuple[LoopParams, PassConfig]]:
        """Yield the full search grid: loop parameters x pass configs."""
        for params in self.candidates(task, chip, bits):
            for pass_config in self.pass_configs:
                yield params, pass_config
