"""Serving-level DSE: the cheapest fleet that holds the SLO.

The loop-knob search (:mod:`repro.dse.search`) answers the paper's
Table 7 question — which (hu, ru) maps one RNN onto one Plasticine chip
fastest.  This module asks the Table 6 question at fleet scale: given a
diurnal multi-user workload and a P99 SLO, **which fleet — size ×
platform mix × scheduler × batcher × dispatch policy — meets the SLO
for the least money?**

The idiom mirrors the chip-level DSE deliberately:

* :class:`FleetSpace` enumerates candidates the way
  :class:`~repro.dse.space.ParameterSpace` enumerates (hu, ru) points —
  every platform multiset up to ``max_replicas``, crossed with the
  policy/scheduler/batcher axes.
* :func:`plan_capacity` evaluates each candidate the way
  :func:`~repro.dse.search.search` maps-and-simulates each point: one
  O(1)-memory summary-mode stream simulation per fleet (Plasticine
  replicas compile through the Table 7 tuner exactly as in live
  serving), scoring P99 against the SLO and cost per million requests
  from the Table 4/5 TDP + price data (:mod:`repro.platforms`).
* :class:`CapacityPlan` is the :class:`~repro.dse.search.DSEResult`
  analogue: the cheapest SLO-meeting fleet plus the full evaluated
  frontier, JSON-serializable for the perf-smoke artifact
  (``benchmarks/bench_capacity_planner.py``).

Since the shared DSE runner (:mod:`repro.dse.runner`) landed, the sweep
runs at pool speed: the seeded diurnal stream is materialized **once**
per plan and shared across candidates (inherited copy-on-write under
the fork start method — workers on spawn platforms regenerate it from
the seed, bit-identically), candidates fan out over ``workers``
processes in candidate order, and — by default — each candidate's
replay aborts as soon as enough completions have overshot the SLO that
the full replay could only conclude ``meets_slo=False``
(:func:`~repro.dse.runner.prune_threshold`).  Pruned points carry
``pruned=True`` and partial metrics; feasible candidates are never
pruned, so ``plan.best`` and the feasible frontier match the
``prune=False`` full replay exactly.

Example::

    >>> from repro.dse.capacity import FleetSpace, plan_capacity
    >>> from repro.workloads.deepbench import task
    >>> plan = plan_capacity(
    ...     task("lstm", 256, 25),
    ...     slo_ms=5.0,
    ...     peak_rate_per_s=2000,
    ...     n_requests=300,
    ...     space=FleetSpace(platforms=("cpu", "gpu"), max_replicas=2),
    ... )
    >>> plan.best.meets_slo
    True
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import combinations_with_replacement, groupby
from pathlib import Path
from typing import Iterator

from repro.errors import DSEError
from repro.dse.runner import (
    DSEStats,
    PruneAbort,
    PruningSummary,
    fingerprint,
    load_cached,
    prune_threshold,
    run_jobs,
    store_cached,
)
from repro.serving.batching import available_batchers
from repro.serving.fleet import SCHEDULING_POLICIES, Fleet
from repro.serving.scheduler import available_schedulers
from repro.serving.stats import StreamSummary
from repro.serving.traffic import diurnal_arrivals
from repro.workloads.deepbench import RNNTask

__all__ = ["FleetSpace", "CapacityPoint", "CapacityPlan", "plan_capacity"]


def _mix_label(roster: "tuple[str, ...]") -> str:
    return ",".join(f"{name}:{len(list(run))}" for name, run in groupby(roster))


@dataclass(frozen=True)
class FleetSpace:
    """The fleet-configuration grid the capacity planner searches.

    The serving-layer analogue of
    :class:`~repro.dse.space.ParameterSpace`: ``candidates()``
    enumerates every multiset of ``platforms`` from one replica up to
    ``max_replicas`` (order within a fleet does not matter — the roster
    is canonicalized), crossed with the policy, scheduler, and batcher
    axes.

    Example::

        >>> space = FleetSpace(platforms=("gpu", "brainwave"), max_replicas=2)
        >>> [m for m in space.mixes()]
        [('brainwave',), ('gpu',), ('brainwave', 'brainwave'), ('brainwave', 'gpu'), ('gpu', 'gpu')]
    """

    platforms: tuple[str, ...] = ("plasticine", "brainwave", "gpu")
    max_replicas: int = 3
    policies: tuple[str, ...] = ("least-loaded",)
    schedulers: tuple[str, ...] = ("fifo",)
    batchers: tuple[str, ...] = ("none",)
    max_batch: int | None = None

    def __post_init__(self) -> None:
        if not self.platforms or self.max_replicas < 1:
            raise DSEError("empty fleet space")
        for policy in self.policies:
            if policy not in SCHEDULING_POLICIES:
                raise DSEError(
                    f"unknown policy {policy!r}; known: "
                    f"{', '.join(SCHEDULING_POLICIES)}"
                )
        for scheduler in self.schedulers:
            if scheduler not in available_schedulers():
                raise DSEError(f"unknown scheduler {scheduler!r}")
        for batcher in self.batchers:
            if batcher not in available_batchers():
                raise DSEError(f"unknown batcher {batcher!r}")

    def mixes(self) -> "Iterator[tuple[str, ...]]":
        """Every platform multiset, smallest fleets first."""
        names = tuple(sorted(set(self.platforms)))
        for size in range(1, self.max_replicas + 1):
            yield from combinations_with_replacement(names, size)

    def candidates(self) -> "Iterator[tuple[tuple[str, ...], str, str, str]]":
        """(roster, policy, scheduler, batcher) for every grid point."""
        for roster in self.mixes():
            for policy in self.policies:
                for scheduler in self.schedulers:
                    for batcher in self.batchers:
                        yield roster, policy, scheduler, batcher

    def n_candidates(self) -> int:
        return (
            sum(1 for _ in self.mixes())
            * len(self.policies)
            * len(self.schedulers)
            * len(self.batchers)
        )


@dataclass(frozen=True)
class CapacityPoint:
    """One evaluated fleet configuration — a serving-layer SearchPoint."""

    mix: str
    platforms: tuple[str, ...]
    replicas: int
    policy: str
    scheduler: str
    batcher: str
    p99_ms: float
    slo_attainment: float
    meets_slo: bool
    throughput_rps: float
    joules_per_request: float
    fleet_watt_hours: float
    cost_usd_per_1m: float
    #: True when the replay aborted early on a blown SLO miss budget
    #: (the metric fields then cover only the simulated prefix).
    pruned: bool = False
    #: Requests actually simulated for this candidate (= the plan's
    #: ``n_requests`` unless pruned).
    simulated_requests: int = 0

    @property
    def is_mixed(self) -> bool:
        return len(set(self.platforms)) > 1

    def to_row(self) -> dict:
        """Flat JSON-serializable record for the frontier artifact."""
        return {
            "mix": self.mix,
            "replicas": self.replicas,
            "policy": self.policy,
            "scheduler": self.scheduler,
            "batcher": self.batcher,
            "p99_ms": self.p99_ms,
            "slo_attainment": self.slo_attainment,
            "meets_slo": self.meets_slo,
            "throughput_rps": self.throughput_rps,
            "joules_per_request": self.joules_per_request,
            "fleet_watt_hours": self.fleet_watt_hours,
            "cost_usd_per_1m": self.cost_usd_per_1m,
            "pruned": self.pruned,
            "simulated_requests": self.simulated_requests,
        }


@dataclass(frozen=True)
class CapacityPlan:
    """Search outcome: cheapest SLO-meeting fleet plus the frontier."""

    task: RNNTask
    slo_ms: float
    n_requests: int
    points: tuple[CapacityPoint, ...] = field(repr=False)

    def feasible_points(self) -> tuple[CapacityPoint, ...]:
        return tuple(p for p in self.points if p.meets_slo)

    @property
    def best(self) -> CapacityPoint:
        """Cheapest fleet with P99 under the SLO.

        Ties break toward fewer replicas, then the lexicographically
        first mix — deterministic like the chip DSE's tie-breaks.
        """
        feasible = self.feasible_points()
        if not feasible:
            raise DSEError(
                f"no fleet in the space holds P99 < {self.slo_ms} ms "
                f"for {self.task.name}; widen the space or the SLO"
            )
        return min(
            feasible, key=lambda p: (p.cost_usd_per_1m, p.replicas, p.mix)
        )

    @property
    def n_pruned(self) -> int:
        """Candidates the SLO-miss budget aborted early."""
        return sum(1 for p in self.points if p.pruned)

    @property
    def simulated_requests(self) -> int:
        """Requests simulated across every candidate — without pruning
        this is ``n_candidates * n_requests``; the gap is the saving."""
        return sum(p.simulated_requests for p in self.points)

    def frontier(self) -> tuple[CapacityPoint, ...]:
        """The cost/latency Pareto frontier over all evaluated fleets.

        Sorted by rising cost; each kept point has strictly lower P99
        than every cheaper point (dominated fleets are dropped).
        """
        best_p99 = float("inf")
        kept = []
        for point in sorted(
            self.points, key=lambda p: (p.cost_usd_per_1m, p.p99_ms)
        ):
            if point.p99_ms < best_p99:
                kept.append(point)
                best_p99 = point.p99_ms
        return tuple(kept)

    def to_json(self) -> dict:
        """The frontier artifact, shaped like the perf-smoke JSONs."""
        feasible = self.feasible_points()
        return {
            "task": self.task.name,
            "slo_ms": self.slo_ms,
            "n_requests": self.n_requests,
            "n_candidates": len(self.points),
            "n_feasible": len(feasible),
            "n_pruned": self.n_pruned,
            "simulated_requests": self.simulated_requests,
            "best": self.best.to_row() if feasible else None,
            "frontier": [p.to_row() for p in self.frontier()],
            "points": [p.to_row() for p in self.points],
        }

    def dumps(self, **kwargs) -> str:
        return json.dumps(self.to_json(), **kwargs)


@dataclass(frozen=True)
class _StreamSpec:
    """The seeded diurnal workload, in picklable form.

    One spec → one request stream, deterministically: workers that do
    not inherit the parent's materialized copy (spawn start method)
    regenerate an identical stream from the spec.
    """

    task: RNNTask
    base_rate_per_s: float
    peak_rate_per_s: float
    period_s: float
    n_requests: int
    seed: int

    def materialize(self) -> tuple:
        return tuple(
            diurnal_arrivals(
                self.task,
                base_rate_per_s=self.base_rate_per_s,
                peak_rate_per_s=self.peak_rate_per_s,
                period_s=self.period_s,
                n_requests=self.n_requests,
                seed=self.seed,
                materialize=False,
            )
        )


#: The per-process shared stream: materialized once in the parent
#: before the pool forks (workers inherit it copy-on-write, nothing is
#: pickled per job) and lazily on first use under spawn.
_SHARED_STREAM: "tuple[_StreamSpec, tuple] | None" = None


def _shared_stream(spec: _StreamSpec) -> tuple:
    global _SHARED_STREAM
    if _SHARED_STREAM is None or _SHARED_STREAM[0] != spec:
        _SHARED_STREAM = (spec, spec.materialize())
    return _SHARED_STREAM[1]


@dataclass(frozen=True)
class _PlanJob:
    """One candidate evaluation, picklable for the worker pool."""

    roster: tuple[str, ...]
    policy: str
    scheduler: str
    batcher: str
    max_batch: int | None
    slo_ms: float
    stream: _StreamSpec
    prune: bool


def _evaluate(job: _PlanJob) -> CapacityPoint:
    """Simulate one candidate fleet on the shared diurnal workload.

    Module-level and pure in its job, so :func:`~repro.dse.runner.run_jobs`
    can fan candidates across processes with bit-identical results.
    """
    spec = job.stream
    arrivals = _shared_stream(spec)
    fleet = Fleet(job.roster, policy=job.policy)
    n = spec.n_requests
    sink: StreamSummary | None = None
    if job.prune:
        sink = PruningSummary(
            fleet.platform_name,
            slo_ms=job.slo_ms,
            scheduler=job.scheduler,
            batcher=job.batcher,
            prune_slo_ms=job.slo_ms,
            threshold=prune_threshold(n),
        )
    pruned = False
    try:
        summary: StreamSummary = fleet.serve_stream(
            iter(arrivals),
            slo_ms=job.slo_ms,
            scheduler=job.scheduler,
            batcher=job.batcher,
            max_batch=job.max_batch,
            mode="summary",
            presorted=True,
            summary=sink,
        )
    except PruneAbort as abort:
        # The miss budget is provably blown: score the simulated prefix
        # and move on.  finalize() attaches the same fleet metadata
        # serve_stream would have (no autoscaler in the planner, so the
        # provisioned and active sets are the full roster).
        pruned = True
        summary = abort.summary.finalize(
            replicas=len(job.roster),
            active_replicas=len(job.roster),
            policy=job.policy,
            platforms=job.roster if len(set(job.roster)) > 1 else (),
        )
    p99 = summary.p99_ms
    return CapacityPoint(
        mix=_mix_label(job.roster),
        platforms=job.roster,
        replicas=len(job.roster),
        policy=job.policy,
        scheduler=job.scheduler,
        batcher=job.batcher,
        p99_ms=p99,
        slo_attainment=summary.slo_attainment,
        meets_slo=False if pruned else p99 < job.slo_ms,
        throughput_rps=summary.throughput_rps,
        joules_per_request=summary.joules_per_request,
        fleet_watt_hours=summary.fleet_watt_hours,
        cost_usd_per_1m=summary.cost_usd_per_1m_requests,
        pruned=pruned,
        simulated_requests=summary.n_requests,
    )


def _plan_fingerprint(spec: _StreamSpec, slo_ms: float, space: FleetSpace, prune: bool) -> str:
    return fingerprint(
        {
            "kind": "capacity-plan",
            "task": spec.task.name,
            "slo_ms": slo_ms,
            "base_rate_per_s": spec.base_rate_per_s,
            "peak_rate_per_s": spec.peak_rate_per_s,
            "period_s": spec.period_s,
            "n_requests": spec.n_requests,
            "seed": spec.seed,
            "prune": prune,
            "space": {
                "platforms": space.platforms,
                "max_replicas": space.max_replicas,
                "policies": space.policies,
                "schedulers": space.schedulers,
                "batchers": space.batchers,
                "max_batch": space.max_batch,
            },
        }
    )


def _points_from_cache(payload: dict) -> tuple[CapacityPoint, ...]:
    return tuple(
        CapacityPoint(**dict(row, platforms=tuple(row["platforms"])))
        for row in payload["points"]
    )


def plan_capacity(
    task: RNNTask,
    *,
    slo_ms: float = 5.0,
    peak_rate_per_s: float = 2000.0,
    base_rate_per_s: float | None = None,
    period_s: float | None = None,
    n_requests: int = 2000,
    seed: int = 0,
    space: FleetSpace | None = None,
    workers: int | None = None,
    prune: bool = True,
    cache_dir: "str | Path | None" = None,
    stats: DSEStats | None = None,
) -> CapacityPlan:
    """Search fleet size × platform mix × scheduler × batcher for the
    cheapest fleet holding ``P99 < slo_ms`` on a diurnal workload.

    Every candidate is replayed over the *same* seeded
    :func:`~repro.serving.traffic.diurnal_arrivals` stream (base-to-peak
    sinusoidal ramp, defaults: base = peak/4, one full period over the
    stream), simulated in O(1)-memory summary mode, and scored on the
    energy/TCO accounting the summary carries.  The stream is
    materialized once and shared across candidates — bit-identical to
    regenerating it per candidate, since the generator is a pure
    function of the seed.  ``n_requests`` scales the workload down from
    the headline "1M users over a day" to something a test or
    perf-smoke run can afford — the arrival *pattern* and the
    per-request costs are what decide the frontier, not the absolute
    count (the benchmark pins this).

    Args:
        workers: Fan candidate evaluations onto this many processes
            (:func:`~repro.dse.runner.run_jobs`; default sequential).
            Results are folded in candidate order whatever the pool
            size, so the returned plan is bit-identical at any worker
            count — purely a wall-clock knob.
        prune: Abort a candidate's replay once its SLO miss budget
            (:func:`~repro.dse.runner.prune_threshold`) is provably
            blown.  Pruned points keep partial metrics and are flagged
            ``pruned=True`` with ``meets_slo=False`` — a verdict the
            full replay is guaranteed to share, so the feasible set and
            ``plan.best`` are unchanged.  ``prune=False`` restores the
            full per-candidate replay bit-identically.
        cache_dir: Directory for the on-disk JSON result cache, keyed
            by a fingerprint of the workload and space.  A hit skips
            the whole sweep (CI perf-smoke reruns are warm); delete the
            directory to invalidate after changing cost models.
        stats: Optional :class:`~repro.dse.runner.DSEStats` the sweep
            fills in (candidates, pruned count, simulated requests,
            cache/workers provenance).

    Returns a :class:`CapacityPlan`; ``plan.best`` raises
    :class:`~repro.errors.DSEError` when nothing in the space holds the
    SLO, exactly like the chip DSE's no-feasible-design error.
    """
    if slo_ms <= 0:
        raise DSEError("slo_ms must be > 0")
    if n_requests < 1:
        raise DSEError("n_requests must be >= 1")
    if peak_rate_per_s <= 0:
        raise DSEError("peak_rate_per_s must be > 0")
    if base_rate_per_s is None:
        base_rate_per_s = peak_rate_per_s / 4.0
    if period_s is None:
        # One full diurnal period over the stream at the mean rate.
        mean_rate = (base_rate_per_s + peak_rate_per_s) / 2.0
        period_s = n_requests / mean_rate
    space = space or FleetSpace()
    stats = stats if stats is not None else DSEStats()
    stats.workers = workers or 1
    spec = _StreamSpec(
        task=task,
        base_rate_per_s=base_rate_per_s,
        peak_rate_per_s=peak_rate_per_s,
        period_s=period_s,
        n_requests=n_requests,
        seed=seed,
    )
    digest = None
    if cache_dir is not None:
        digest = _plan_fingerprint(spec, slo_ms, space, prune)
        payload = load_cached(cache_dir, "plan", digest)
        if payload is not None:
            points = _points_from_cache(payload)
            stats.candidates = len(points)
            stats.pruned = sum(1 for p in points if p.pruned)
            stats.simulated_requests = sum(p.simulated_requests for p in points)
            stats.from_cache = True
            return CapacityPlan(
                task=task, slo_ms=slo_ms, n_requests=n_requests, points=points
            )
    jobs = [
        _PlanJob(
            roster=roster,
            policy=policy,
            scheduler=scheduler,
            batcher=batcher,
            max_batch=space.max_batch,
            slo_ms=slo_ms,
            stream=spec,
            prune=prune,
        )
        for roster, policy, scheduler, batcher in space.candidates()
    ]
    if not jobs:
        raise DSEError(f"no candidate fleets for {task.name}")
    # Materialize the shared stream in the parent *before* the pool
    # forks, so every worker inherits one copy-on-write instance.
    _shared_stream(spec)
    points = tuple(run_jobs(_evaluate, jobs, workers=workers))
    stats.candidates = len(points)
    stats.evaluated = len(points)
    stats.pruned = sum(1 for p in points if p.pruned)
    stats.simulated_requests = sum(p.simulated_requests for p in points)
    plan = CapacityPlan(
        task=task, slo_ms=slo_ms, n_requests=n_requests, points=points
    )
    if cache_dir is not None and digest is not None:
        store_cached(
            cache_dir,
            "plan",
            digest,
            {
                "task": task.name,
                "points": [
                    dict(p.to_row(), platforms=list(p.platforms))
                    for p in plan.points
                ],
            },
        )
    return plan
