"""Per-task parameter selection (paper Table 7, Plasticine columns).

Three parameter sources, in increasing order of automation:

* :func:`paper_params` — the parameters we reconstructed from the paper.
  Table 7's Plasticine column did not survive PDF text extraction intact,
  so these are fit against Table 6's published latencies (they reproduce
  the LSTM 1024/1536/2048 rows to within a few cycles; see
  EXPERIMENTS.md).  ``rv = 64`` (16 lanes x 4-packed fp8) and ``hv = 1``
  throughout, exactly as the paper states.
* :func:`tune` — run the DSE and take its optimum.
* A fixed :class:`~repro.rnn.lstm_loop.LoopParams` the caller supplies.

The paper's qualitative tuning rule (Section 5.2) falls out of the DSE:
small problems fully unroll the dot product and spend leftover PCUs on
``hu``; large problems shift PCUs to ``ru`` to shorten the dot-product
initiation interval that bottlenecks the pipeline.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import DSEError
from repro.dse.search import DSEResult, search
from repro.dse.space import ParameterSpace
from repro.plasticine.chip import PlasticineConfig
from repro.rnn.lstm_loop import LoopParams
from repro.workloads.deepbench import RNNTask

__all__ = ["paper_params", "tune"]

#: Reconstructed Table 7 parameters (Plasticine columns).
_PAPER_PARAMS: dict[tuple[str, int], LoopParams] = {
    ("lstm", 256): LoopParams(hu=4, ru=4, rv=64),
    ("lstm", 512): LoopParams(hu=5, ru=4, rv=64),
    ("lstm", 1024): LoopParams(hu=4, ru=8, rv=64),
    ("lstm", 1536): LoopParams(hu=4, ru=8, rv=64),
    ("lstm", 2048): LoopParams(hu=4, ru=8, rv=64),
    ("gru", 512): LoopParams(hu=4, ru=8, rv=64),
    ("gru", 1024): LoopParams(hu=5, ru=8, rv=64),
    ("gru", 1536): LoopParams(hu=5, ru=8, rv=64),
    ("gru", 2048): LoopParams(hu=5, ru=8, rv=64),
    ("gru", 2560): LoopParams(hu=5, ru=8, rv=64),
    ("gru", 2816): LoopParams(hu=5, ru=8, rv=64),
}


def paper_params(task: RNNTask) -> LoopParams | None:
    """The reconstructed paper parameters for a DeepBench task, or None
    if the task is not in the published suite."""
    return _PAPER_PARAMS.get((task.kind, task.hidden))


def tune(
    task: RNNTask,
    chip: PlasticineConfig | None = None,
    space: ParameterSpace | None = None,
    *,
    bits: int = 8,
    workers: int | None = None,
    pass_axis: bool = False,
    cache_dir: "str | Path | None" = None,
) -> DSEResult:
    """Run the DSE for a task; thin alias of :func:`repro.dse.search.search`.

    Args:
        workers: Parallel parameter-point evaluation (bit-identical to
            sequential at any count; see :func:`~repro.dse.search.search`).
        pass_axis: Search the optimization-pass axis too
            (:meth:`ParameterSpace.with_pass_axis
            <repro.dse.space.ParameterSpace.with_pass_axis>`), so the
            result reports which pass config wins for this task.
        cache_dir: On-disk result cache, as on
            :func:`~repro.dse.search.search`.
    """
    if pass_axis:
        if space is not None:
            raise DSEError(
                "pass_axis=True builds its own pass-config axis; pass a "
                "ParameterSpace with pass_configs instead of both"
            )
        space = ParameterSpace.with_pass_axis()
    return search(
        task, chip, space, bits=bits, workers=workers, cache_dir=cache_dir
    )
