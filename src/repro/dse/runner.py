"""Shared DSE execution engine: pools, pruning, and memoization.

Both search loops — the chip-level Table 7 tuner
(:mod:`repro.dse.search`) and the fleet-level capacity planner
(:mod:`repro.dse.capacity`) — are embarrassingly parallel sweeps of a
pure per-candidate evaluation.  This module is the machinery they
share, so every future DSE axis (sparsity platforms, new compiler
passes, bigger fleet spaces) gets all three speedups for free:

* :func:`run_jobs` — ordered fan-out onto a fork-preferred
  ``multiprocessing`` pool (:func:`~repro.serving.parallel.pool_map`,
  the same idiom as ``serve_parallel``).  Results return in candidate
  order whatever the pool size, so a search that folds them in order
  is **bit-identical** to its sequential loop at any worker count.
* :class:`PruningSummary` — an early-abort
  :class:`~repro.serving.stats.StreamSummary` for the capacity
  planner: candidate evaluation stops as soon as enough completed
  requests have overshot the SLO that the full replay could only
  conclude ``meets_slo=False`` (see :func:`prune_threshold` for the
  exactness argument).  Feasible candidates are never aborted, so the
  planner's ``best`` and feasible frontier are unchanged by pruning.
* :class:`EvalMemo` — a keyed LRU for the chip DSE's
  map-and-simulate results, plus an on-disk JSON cache
  (:func:`load_cached` / :func:`store_cached`) keyed by a
  space/workload :func:`fingerprint` so repeated sweeps (CI
  perf-smoke, notebook reruns) are warm across processes.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import DSEError
from repro.serving.parallel import pool_map
from repro.serving.stats import _HIST_RATIO, StreamSummary

__all__ = [
    "DSEStats",
    "EvalMemo",
    "PruneAbort",
    "PruningSummary",
    "prune_threshold",
    "run_jobs",
    "fingerprint",
    "load_cached",
    "store_cached",
]


@dataclass
class DSEStats:
    """Execution counters for one search run (never part of the result's
    value equality — two runs with different worker counts or cache
    temperatures produce equal results but different stats)."""

    #: Candidate points the search covered (evaluated + memo + pruned).
    candidates: int = 0
    #: Points actually mapped-and-simulated (or stream-replayed) fresh.
    evaluated: int = 0
    #: Points answered by the in-process :class:`EvalMemo`.
    memo_hits: int = 0
    #: Task programs built (hoisted per ``LoopParams``, so typically
    #: one per parameter point rather than one per grid point).
    program_builds: int = 0
    #: Candidates aborted early by :class:`PruningSummary`.
    pruned: int = 0
    #: Requests actually simulated across all candidates (the planner's
    #: pruning savings show up here).
    simulated_requests: int = 0
    #: Whole-search answer loaded from the on-disk cache.
    from_cache: bool = False
    #: Worker processes the sweep ran on.
    workers: int = 1


def run_jobs(fn: Callable, jobs: "Sequence[object]", *, workers: int | None = None) -> list:
    """Evaluate ``fn`` over ``jobs`` in order, optionally on a pool.

    ``workers=None`` (and ``workers=1``) is the plain sequential loop —
    the default everywhere, so parallelism is strictly opt-in.  More
    workers fan the jobs onto :func:`~repro.serving.parallel.pool_map`
    (fork-preferred, results in job order), which is what makes the
    parallel searches bit-identical to sequential: ``fn`` must be a
    pure module-level function of its (picklable) job.
    """
    if workers is None:
        workers = 1
    if workers < 1:
        raise DSEError("workers must be >= 1")
    return pool_map(fn, jobs, workers)


# -- SLO pruning (capacity planner) -----------------------------------------


def prune_threshold(n_requests: int, q: float = 99.0) -> int:
    """Pruning misses threshold: abort once *more than* this many
    completed requests have clearly overshot the SLO.

    The planner scores ``meets_slo = p99_ms < slo_ms`` over the full
    ``n_requests`` replay, with the Pq rank interpolated at
    ``rank = (q/100) * (n - 1)``.  If ``m`` completions exceed the SLO,
    the value at ``floor(rank)`` — a lower bound on the interpolated
    percentile — is itself a miss as soon as
    ``floor(rank) >= n - m``.  The smallest such ``m`` is
    ``(n - 1) - floor(rank) + 1``, so evaluation may abort the moment
    ``m > (n - 1) - floor(rank)`` — this function, computed with the
    *same* float arithmetic as the percentile — and the full run could
    only have concluded ``meets_slo=False``.  For round ``n`` this is
    exactly the intuitive ``floor(0.01 * n)`` (20 for 2000 requests).

    Feasible candidates can never reach the threshold (contrapositive:
    ``m > threshold`` implies ``p99 > slo``), so pruning preserves the
    planner's ``best`` and feasible set exactly.
    """
    if n_requests < 1:
        raise DSEError("n_requests must be >= 1")
    rank = (q / 100.0) * (n_requests - 1)
    return (n_requests - 1) - math.floor(rank)


class PruneAbort(Exception):
    """Control-flow signal: a candidate's replay proved infeasible early.

    Carries the :class:`PruningSummary` so the caller can score the
    partial metrics observed up to the abort point.
    """

    def __init__(self, summary: "PruningSummary") -> None:
        super().__init__("candidate pruned: SLO miss budget exhausted")
        self.summary = summary


class PruningSummary(StreamSummary):
    """A stream summary that raises :class:`PruneAbort` once the SLO
    miss budget is provably blown.

    Counts *clear* misses — sojourns at or above ``slo_ms`` times one
    log-histogram bucket ratio (~1.8%) — rather than bare ``> slo_ms``
    overshoots.  The margin makes the abort sound in the
    histogram-estimated percentile regime too (streams past the
    64-sample exact reservoir): a clear miss lands in a bucket whose
    lower edge is already at or above the SLO, so once clear misses
    occupy the P99 rank the bucket-interpolated estimate cannot dip
    back under the SLO, exactly as the order statistic cannot in the
    exact regime.  Saturated candidates — the ones worth pruning —
    overshoot by orders of magnitude, so the margin costs essentially
    no pruning opportunity.
    """

    def __init__(self, *args, prune_slo_ms: float, threshold: int, **kwargs):
        super().__init__(*args, **kwargs)
        if prune_slo_ms <= 0:
            raise DSEError("prune_slo_ms must be > 0")
        if threshold < 0:
            raise DSEError("prune threshold must be >= 0")
        self.prune_slo_ms = prune_slo_ms
        self.threshold = threshold
        #: Completed requests folded in before (any) abort.
        self.simulated = 0
        #: Clear SLO misses counted toward the threshold.
        self.clear_misses = 0
        self._clear_cut_ms = prune_slo_ms * _HIST_RATIO

    def observe_served(
        self,
        request,
        result,
        start_s: float,
        finish_s: float,
        batch_size: int,
        outcome: str = "ok",
    ) -> None:
        super().observe_served(
            request, result, start_s, finish_s, batch_size, outcome
        )
        self.simulated += 1
        sojourn_ms = (finish_s - request.arrival_s) * 1e3
        if sojourn_ms >= self._clear_cut_ms:
            self.clear_misses += 1
            if self.clear_misses > self.threshold:
                raise PruneAbort(self)


# -- memoization (chip tuner) -----------------------------------------------


class EvalMemo:
    """A small keyed LRU for pure evaluation results.

    Keys must be hashable (the chip DSE uses ``(task family, params,
    bits, chip, pass_config)`` — all frozen dataclasses); values are
    whatever compact record the caller can rebuild a result from.
    Hit/miss counters feed :class:`DSEStats`.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise DSEError("memo maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[object, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: object):
        """The cached record, or None — counts a hit/miss either way."""
        record = self._data.get(key)
        if record is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return record

    def put(self, key: object, record: object) -> None:
        self._data[key] = record
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0


# -- on-disk result cache ---------------------------------------------------

#: Bump when a cached payload's schema changes; stale files then miss.
_CACHE_SCHEMA = 1


def fingerprint(payload: object) -> str:
    """Stable hex digest of a JSON-serializable search description.

    Canonical JSON (sorted keys, no whitespace drift) hashed with
    SHA-256: equal search spaces and workloads collide, everything
    else does not.  Callers include every input that shapes the result
    — task fields, chip, bits, axis tuples, seeds, rates.
    """
    blob = json.dumps(
        {"schema": _CACHE_SCHEMA, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


def _cache_path(cache_dir: "str | Path", kind: str, digest: str) -> Path:
    return Path(cache_dir) / f"{kind}-{digest}.json"


def load_cached(cache_dir: "str | Path", kind: str, digest: str) -> dict | None:
    """The cached payload for a fingerprint, or None.

    A corrupt file (truncated write from a killed run, by hand edits)
    is treated as a miss, never an error — the cache is purely an
    accelerator, and the entry is rewritten by the fresh run.
    """
    path = _cache_path(cache_dir, kind, digest)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("schema") != _CACHE_SCHEMA:
        return None
    return payload


def store_cached(
    cache_dir: "str | Path", kind: str, digest: str, payload: dict
) -> Path:
    """Atomically persist a result payload under the fingerprint.

    Write-to-temp + ``os.replace`` (the ``record_trace`` idiom), so a
    crashed run never leaves a half-written entry for :func:`load_cached`
    to trip on, and concurrent writers last-write-win a whole file.
    """
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = _cache_path(directory, kind, digest)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_text(
        json.dumps(dict(payload, schema=_CACHE_SCHEMA), sort_keys=True)
    )
    os.replace(tmp, path)
    return path
