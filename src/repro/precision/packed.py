"""Packed low-precision struct types (paper Section 4.1).

The paper adds two struct types to Spatial: ``4-float8`` (four 8-bit
floats in one 32-bit word) and ``2-float16`` (two 16-bit floats in one
32-bit word).  "Users can only access values that are 32-bit aligned",
which keeps PMU banking and DRAM granularity unchanged — only the PCU
datapath is aware of the packing.

:class:`PackedArray` stores a float vector as a ``uint32`` word array and
exposes both the packed view (for storage accounting and bank modelling)
and the decoded float view (for functional simulation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PrecisionError
from repro.precision.formats import FP8, FP16, FloatFormat
from repro.precision.quantize import decode_bits, encode_bits

__all__ = ["PackedFormat", "PackedArray", "PACKED_4xFP8", "PACKED_2xFP16"]


@dataclass(frozen=True)
class PackedFormat:
    """A fixed number of identical scalars packed into one 32-bit word."""

    name: str
    element: FloatFormat
    elements_per_word: int

    def __post_init__(self) -> None:
        if self.element.total_bits * self.elements_per_word != 32:
            raise PrecisionError(
                f"{self.name}: {self.elements_per_word} x "
                f"{self.element.total_bits}-bit elements do not fill a 32-bit word"
            )

    @property
    def element_bits(self) -> int:
        return self.element.total_bits

    def words_for(self, n_values: int) -> int:
        """Number of 32-bit words needed for ``n_values`` scalars."""
        if n_values < 0:
            raise PrecisionError(f"n_values must be >= 0, got {n_values}")
        return -(-n_values // self.elements_per_word)

    def storage_bytes(self, n_values: int) -> int:
        return 4 * self.words_for(n_values)


#: The paper's ``4-float8`` struct type.
PACKED_4xFP8 = PackedFormat("4-float8", FP8, 4)

#: The paper's ``2-float16`` struct type.
PACKED_2xFP16 = PackedFormat("2-float16", FP16, 2)


class PackedArray:
    """A 1-D float vector stored as packed 32-bit words.

    The tail of the final word is zero-padded; ``len()`` reports the
    logical (unpadded) element count.
    """

    def __init__(self, words: np.ndarray, length: int, fmt: PackedFormat):
        words = np.asarray(words, dtype=np.uint32)
        if words.ndim != 1:
            raise PrecisionError("packed words must be a 1-D array")
        if fmt.words_for(length) != words.size:
            raise PrecisionError(
                f"{length} values need {fmt.words_for(length)} words, got {words.size}"
            )
        self.words = words
        self.length = length
        self.fmt = fmt

    def __len__(self) -> int:
        return self.length

    @property
    def storage_bytes(self) -> int:
        return 4 * self.words.size

    @classmethod
    def pack(cls, values: np.ndarray, fmt: PackedFormat) -> "PackedArray":
        """Quantize and pack a float vector into 32-bit words."""
        v = np.asarray(values, dtype=np.float64).ravel()
        k = fmt.elements_per_word
        bits = encode_bits(v, fmt.element).astype(np.uint32)
        padded = np.zeros(fmt.words_for(v.size) * k, dtype=np.uint32)
        padded[: v.size] = bits
        lanes = padded.reshape(-1, k)
        shift = fmt.element_bits
        words = np.zeros(lanes.shape[0], dtype=np.uint32)
        for i in range(k):
            words |= lanes[:, i] << np.uint32(i * shift)
        return cls(words, v.size, fmt)

    def unpack(self) -> np.ndarray:
        """Decode back to a float64 vector of the logical length."""
        k = self.fmt.elements_per_word
        shift = self.fmt.element_bits
        mask = np.uint32((1 << shift) - 1)
        lanes = np.empty((self.words.size, k), dtype=np.uint32)
        for i in range(k):
            lanes[:, i] = (self.words >> np.uint32(i * shift)) & mask
        flat = decode_bits(lanes.ravel(), self.fmt.element)
        return flat[: self.length]

    def word(self, index: int) -> int:
        """Raw 32-bit word at ``index`` (the only legal access granularity)."""
        if not 0 <= index < self.words.size:
            raise PrecisionError(f"word index {index} out of range 0..{self.words.size - 1}")
        return int(self.words[index])
