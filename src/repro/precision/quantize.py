"""Vectorized quantization onto a :class:`~repro.precision.formats.FloatFormat`.

All quantization is round-to-nearest-even with *saturating* overflow, the
behaviour of inference accelerators that clamp rather than produce
infinities.  Values are carried as float64 and snapped onto the target
grid, which is exact because every modelled format is far narrower than
float64.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PrecisionError
from repro.precision.formats import FloatFormat

__all__ = [
    "quantize",
    "ulp",
    "encode_bits",
    "decode_bits",
    "qadd",
    "qmul",
    "quantized_dot",
]


def _exponents(mag: np.ndarray, fmt: FloatFormat) -> np.ndarray:
    """Per-element unbiased exponent, clamped into the format's range."""
    with np.errstate(divide="ignore", invalid="ignore"):
        e = np.floor(np.log2(mag, where=mag > 0, out=np.zeros_like(mag)))
    return np.clip(e, fmt.min_exponent, fmt.max_exponent)


def quantize(x: np.ndarray | float, fmt: FloatFormat) -> np.ndarray:
    """Round ``x`` to the nearest representable value of ``fmt``.

    Rounding is half-to-even; magnitudes beyond :attr:`FloatFormat.max_value`
    saturate; magnitudes below the smallest representable value round to
    zero (through the subnormal grid when the format has one).

    Returns a float64 array of the same shape holding exactly representable
    values.
    """
    arr = np.asarray(x, dtype=np.float64)
    scalar = arr.ndim == 0
    arr = np.atleast_1d(arr)
    if not np.all(np.isfinite(arr)):
        raise PrecisionError("quantize requires finite inputs")

    mag = np.abs(arr)
    e = _exponents(mag, fmt)
    if not fmt.has_subnormals:
        # Flush magnitudes below the normal range to zero before rounding.
        mag = np.where(mag < fmt.min_normal / 2, 0.0, mag)
    # Grid spacing at each element's exponent; subnormals share the spacing
    # of the minimum exponent because e was clamped to min_exponent.
    step = np.exp2(e - fmt.mantissa_bits)
    q = np.round(mag / step) * step
    q = np.minimum(q, fmt.max_value)
    out = np.copysign(q, arr)
    out[mag == 0.0] = 0.0
    return out[0] if scalar else out


def ulp(x: np.ndarray | float, fmt: FloatFormat) -> np.ndarray:
    """Unit-in-the-last-place of ``fmt`` at the magnitude of ``x``."""
    mag = np.abs(np.asarray(x, dtype=np.float64))
    e = _exponents(mag, fmt)
    return np.exp2(e - fmt.mantissa_bits)


def encode_bits(x: np.ndarray | float, fmt: FloatFormat) -> np.ndarray:
    """Encode values into raw bit patterns (as ``uint32``).

    The value is first quantized; the result satisfies
    ``decode_bits(encode_bits(x)) == quantize(x)`` exactly.
    """
    q = np.atleast_1d(np.asarray(quantize(x, fmt), dtype=np.float64))
    sign = (np.signbit(q)).astype(np.uint32)
    mag = np.abs(q)

    e = _exponents(mag, fmt)
    subnormal = mag < fmt.min_normal
    biased = np.where(subnormal, 0, e + fmt.bias).astype(np.uint32)

    mant = np.where(
        subnormal,
        np.round(mag / 2.0 ** (fmt.min_exponent - fmt.mantissa_bits)),
        np.round((mag / np.exp2(e) - 1.0) * (1 << fmt.mantissa_bits)),
    )
    mant = mant.astype(np.uint32)

    bits = (
        (sign << np.uint32(fmt.exponent_bits + fmt.mantissa_bits))
        | (biased << np.uint32(fmt.mantissa_bits))
        | mant
    )
    bits[mag == 0.0] = sign[mag == 0.0] << np.uint32(
        fmt.exponent_bits + fmt.mantissa_bits
    )
    return bits


def decode_bits(bits: np.ndarray, fmt: FloatFormat) -> np.ndarray:
    """Decode raw bit patterns produced by :func:`encode_bits`."""
    b = np.asarray(bits, dtype=np.uint64)
    mant_mask = np.uint64((1 << fmt.mantissa_bits) - 1)
    exp_mask = np.uint64((1 << fmt.exponent_bits) - 1)

    mant = (b & mant_mask).astype(np.float64)
    biased = ((b >> np.uint64(fmt.mantissa_bits)) & exp_mask).astype(np.int64)
    sign = np.where(
        (b >> np.uint64(fmt.mantissa_bits + fmt.exponent_bits)) & np.uint64(1),
        -1.0,
        1.0,
    )

    normal = biased > 0
    value = np.where(
        normal,
        (1.0 + mant / (1 << fmt.mantissa_bits))
        * np.exp2(biased - fmt.bias, where=normal, out=np.ones_like(mant)),
        mant * 2.0 ** (fmt.min_exponent - fmt.mantissa_bits),
    )
    return sign * value


def qadd(a: np.ndarray | float, b: np.ndarray | float, fmt: FloatFormat) -> np.ndarray:
    """Add then quantize the result to ``fmt`` (one rounded operation)."""
    return quantize(np.asarray(a, dtype=np.float64) + np.asarray(b, dtype=np.float64), fmt)


def qmul(a: np.ndarray | float, b: np.ndarray | float, fmt: FloatFormat) -> np.ndarray:
    """Multiply then quantize the result to ``fmt`` (one rounded operation)."""
    return quantize(np.asarray(a, dtype=np.float64) * np.asarray(b, dtype=np.float64), fmt)


def quantized_dot(
    w: np.ndarray,
    x: np.ndarray,
    *,
    mul_fmt: FloatFormat,
    stage1_fmt: FloatFormat,
    accum_fmt: FloatFormat,
    lanes: int = 16,
) -> float:
    """Dot product following the paper's mixed-precision datapath.

    Models the Figure 6(d) PCU pipeline: element-wise multiplies in
    ``mul_fmt`` (8-bit), the first pairwise reduction stage in
    ``stage1_fmt`` (16-bit), and the remaining reduction plus accumulation
    across ``lanes``-wide chunks in ``accum_fmt`` (32-bit).

    Args:
        w, x: 1-D operand vectors of equal length.
        mul_fmt: Format of the multiplier outputs (weights are quantized
            to this format too).
        stage1_fmt: Format of the first reduction stage.
        accum_fmt: Format of the reduction tree remainder and accumulator.
        lanes: SIMD width of one PCU chunk.

    Returns:
        The accumulated dot product as a Python float (an ``accum_fmt``
        representable value).
    """
    w = np.asarray(w, dtype=np.float64).ravel()
    x = np.asarray(x, dtype=np.float64).ravel()
    if w.shape != x.shape:
        raise PrecisionError(f"dot operands differ in length: {w.shape} vs {x.shape}")
    if lanes < 1:
        raise PrecisionError(f"lanes must be positive, got {lanes}")

    acc = 0.0
    for start in range(0, w.size, lanes):
        chunk_w = quantize(w[start : start + lanes], mul_fmt)
        chunk_x = quantize(x[start : start + lanes], mul_fmt)
        prods = qmul(chunk_w, chunk_x, stage1_fmt)
        # First reduction stage at stage1 precision (pairwise).
        level = prods
        if level.size > 1:
            half = level.size // 2
            pair = qadd(level[:half], level[half : 2 * half], stage1_fmt)
            if level.size % 2:
                pair = np.concatenate([pair, level[-1:]])
            level = pair
        # Remaining tree levels at accumulator precision.
        while level.size > 1:
            half = level.size // 2
            pair = qadd(level[:half], level[half : 2 * half], accum_fmt)
            if level.size % 2:
                pair = np.concatenate([pair, level[-1:]])
            level = pair
        acc = float(qadd(acc, float(level[0]), accum_fmt))
    return acc
