"""Brainwave's blocked floating-point (BFP) format.

Section 3.2 of the paper: "Brainwave embeds MVM in a blocked
floating-point format, where the vector of ``hv`` values share a single
5-bit exponent and have distinct signs and 2-5 bit mantissa for each
value."  This module provides an encoder/decoder for that format plus the
storage accounting the Brainwave baseline model uses to decide whether
weights fit on-chip.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PrecisionError

__all__ = ["BlockedFloatFormat", "BlockedVector", "BW_BFP"]


@dataclass(frozen=True)
class BlockedFloatFormat:
    """A block-floating-point format: one shared exponent per block.

    Attributes:
        block_size: Number of values sharing one exponent (Brainwave's
            native dimension ``hv``).
        exponent_bits: Width of the shared exponent field.
        mantissa_bits: Per-value unsigned mantissa width (2-5 for BW).
    """

    block_size: int
    exponent_bits: int = 5
    mantissa_bits: int = 5

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise PrecisionError(f"block_size must be >= 1, got {self.block_size}")
        if not (1 <= self.mantissa_bits <= 10):
            raise PrecisionError(f"mantissa_bits out of range: {self.mantissa_bits}")
        if not (2 <= self.exponent_bits <= 8):
            raise PrecisionError(f"exponent_bits out of range: {self.exponent_bits}")

    @property
    def bits_per_value(self) -> float:
        """Amortized storage bits per value (sign + mantissa + shared exp)."""
        return 1 + self.mantissa_bits + self.exponent_bits / self.block_size

    def storage_bytes(self, n_values: int) -> int:
        """Bytes to store ``n_values`` values (whole blocks, rounded up)."""
        if n_values < 0:
            raise PrecisionError(f"n_values must be >= 0, got {n_values}")
        n_blocks = -(-n_values // self.block_size)
        total_bits = n_blocks * (
            self.exponent_bits + self.block_size * (1 + self.mantissa_bits)
        )
        return -(-total_bits // 8)

    @property
    def exponent_bias(self) -> int:
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def max_exponent(self) -> int:
        return (1 << self.exponent_bits) - 1 - self.exponent_bias

    @property
    def min_exponent(self) -> int:
        return -self.exponent_bias


#: Brainwave's published configuration: hv=400 native dimension, 5-bit
#: shared exponent, 5-bit mantissa ("ms-fp9"-class precision).
BW_BFP = BlockedFloatFormat(block_size=400, exponent_bits=5, mantissa_bits=5)


@dataclass(frozen=True)
class BlockedVector:
    """An encoded block: shared exponent + integer mantissas with signs."""

    fmt: BlockedFloatFormat
    shared_exponent: int
    mantissas: np.ndarray  # signed integers, |m| < 2**mantissa_bits

    @classmethod
    def encode(cls, values: np.ndarray, fmt: BlockedFloatFormat) -> "BlockedVector":
        """Encode up to ``fmt.block_size`` values against a shared exponent.

        The shared exponent is the largest per-value exponent in the block
        (clamped to the exponent field's range); every value is then
        expressed as ``mant * 2**(shared_exponent - mantissa_bits + 1)``
        with round-half-even, saturating mantissas.
        """
        v = np.asarray(values, dtype=np.float64).ravel()
        if v.size == 0 or v.size > fmt.block_size:
            raise PrecisionError(
                f"block must hold 1..{fmt.block_size} values, got {v.size}"
            )
        if not np.all(np.isfinite(v)):
            raise PrecisionError("BFP encode requires finite inputs")

        mag = np.abs(v)
        peak = float(mag.max())
        if peak == 0.0:
            exp = fmt.min_exponent
        else:
            exp = int(np.clip(np.floor(np.log2(peak)), fmt.min_exponent, fmt.max_exponent))

        scale = 2.0 ** (exp - fmt.mantissa_bits + 1)
        mant_limit = (1 << fmt.mantissa_bits) - 1
        mants = np.clip(np.round(v / scale), -mant_limit, mant_limit).astype(np.int64)
        return cls(fmt=fmt, shared_exponent=exp, mantissas=mants)

    def decode(self) -> np.ndarray:
        """Reconstruct the block's float values."""
        scale = 2.0 ** (self.shared_exponent - self.fmt.mantissa_bits + 1)
        return self.mantissas.astype(np.float64) * scale

    @staticmethod
    def quantize_array(values: np.ndarray, fmt: BlockedFloatFormat) -> np.ndarray:
        """Round an arbitrary array through BFP blocks along its last axis.

        Used to evaluate Brainwave's numerical behaviour: the array is
        split into ``block_size`` chunks, each encoded and decoded.
        """
        v = np.asarray(values, dtype=np.float64)
        flat = v.reshape(-1, v.shape[-1]) if v.ndim > 1 else v.reshape(1, -1)
        out = np.empty_like(flat)
        for r in range(flat.shape[0]):
            row = flat[r]
            for start in range(0, row.size, fmt.block_size):
                chunk = row[start : start + fmt.block_size]
                out[r, start : start + chunk.size] = BlockedVector.encode(
                    chunk, fmt
                ).decode()
        return out.reshape(v.shape)
