"""Parametric floating-point format descriptors.

The paper serves RNNs with 8-bit weights/multiplies, 16-bit first-stage
reduction, and 32-bit accumulation (Section 5.1: "mix f8+16+32").  We model
each precision as a :class:`FloatFormat` — an IEEE-754-style sign /
exponent / mantissa layout — so that every arithmetic path in the library
can be quantized onto an explicit representable grid.

The 8-bit format follows the 1-4-3 (sign / 4-bit exponent / 3-bit
mantissa) layout common to deep-learning inference hardware; the paper
itself only requires "8-bit" so the format is configurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PrecisionError


@dataclass(frozen=True)
class FloatFormat:
    """An IEEE-754-style binary floating point format.

    Attributes:
        name: Human-readable identifier (``"fp8"``, ``"fp16"``, ...).
        exponent_bits: Width of the biased exponent field.
        mantissa_bits: Width of the fraction field (excludes implicit 1).
        has_subnormals: Whether values below ``2**min_exponent`` are
            represented on the subnormal grid (otherwise flushed to zero).
    """

    name: str
    exponent_bits: int
    mantissa_bits: int
    has_subnormals: bool = True

    def __post_init__(self) -> None:
        if self.exponent_bits < 2:
            raise PrecisionError(
                f"{self.name}: need at least 2 exponent bits, got {self.exponent_bits}"
            )
        if self.mantissa_bits < 1:
            raise PrecisionError(
                f"{self.name}: need at least 1 mantissa bit, got {self.mantissa_bits}"
            )
        if self.total_bits > 32:
            raise PrecisionError(
                f"{self.name}: {self.total_bits} bits exceed the 32-bit storage word"
            )

    @property
    def total_bits(self) -> int:
        """Storage width in bits (sign + exponent + mantissa)."""
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def total_bytes(self) -> int:
        """Storage width in whole bytes (rounded up)."""
        return (self.total_bits + 7) // 8

    @property
    def bias(self) -> int:
        """Exponent bias, IEEE-style ``2**(e-1) - 1``."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def min_exponent(self) -> int:
        """Smallest unbiased exponent of a *normal* value."""
        return 1 - self.bias

    @property
    def max_exponent(self) -> int:
        """Largest unbiased exponent (all-ones exponent is reserved)."""
        return (1 << self.exponent_bits) - 2 - self.bias

    @property
    def max_value(self) -> float:
        """Largest finite representable magnitude."""
        return float(2.0**self.max_exponent * (2.0 - 2.0**-self.mantissa_bits))

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return float(2.0**self.min_exponent)

    @property
    def min_subnormal(self) -> float:
        """Smallest positive representable magnitude."""
        if not self.has_subnormals:
            return self.min_normal
        return float(2.0 ** (self.min_exponent - self.mantissa_bits))

    @property
    def epsilon(self) -> float:
        """Distance between 1.0 and the next representable value."""
        return float(2.0**-self.mantissa_bits)

    def describe(self) -> str:
        """One-line summary of the format layout and dynamic range."""
        return (
            f"{self.name}: 1-{self.exponent_bits}-{self.mantissa_bits} "
            f"(bias {self.bias}), range [{self.min_subnormal:.3g}, "
            f"{self.max_value:.3g}], eps {self.epsilon:.3g}"
        )


#: 8-bit 1-4-3 format used for weights and multiplies on Plasticine.
FP8 = FloatFormat("fp8", exponent_bits=4, mantissa_bits=3)

#: IEEE half precision; used for the first reduction stage and on the GPU.
FP16 = FloatFormat("fp16", exponent_bits=5, mantissa_bits=10)

#: IEEE single precision (modelled exactly by float64 quantization).
FP32 = FloatFormat("fp32", exponent_bits=8, mantissa_bits=23)

_REGISTRY = {fmt.name: fmt for fmt in (FP8, FP16, FP32)}


def format_by_name(name: str) -> FloatFormat:
    """Look up a predefined format (``fp8``, ``fp16``, ``fp32``) by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise PrecisionError(f"unknown format {name!r}; known formats: {known}") from None
