"""Low- and mixed-precision number formats.

This subpackage is the numerical substrate for the paper's Section 4.1
("Mixed-Precision Support"):

* :mod:`repro.precision.formats` — parametric ``(exponent, mantissa)``
  floating-point format descriptors (fp8 / fp16 / fp32).
* :mod:`repro.precision.quantize` — vectorized round-to-nearest-even
  quantization onto a format's representable grid, plus quantized
  arithmetic helpers used by the DSL interpreter.
* :mod:`repro.precision.blocked` — Microsoft Brainwave's blocked
  floating-point format (one shared 5-bit exponent per ``hv`` values,
  per-value sign and 2-5 bit mantissa).
* :mod:`repro.precision.packed` — the ``4-float8`` and ``2-float16``
  packed struct types the paper adds to Spatial (32-bit aligned storage).
"""

from repro.precision.formats import (
    FP8,
    FP16,
    FP32,
    FloatFormat,
    format_by_name,
)
from repro.precision.quantize import (
    encode_bits,
    decode_bits,
    quantize,
    quantized_dot,
    qadd,
    qmul,
    ulp,
)
from repro.precision.blocked import BlockedFloatFormat, BlockedVector, BW_BFP
from repro.precision.packed import PackedArray, PACKED_4xFP8, PACKED_2xFP16

__all__ = [
    "FloatFormat",
    "FP8",
    "FP16",
    "FP32",
    "format_by_name",
    "quantize",
    "encode_bits",
    "decode_bits",
    "qadd",
    "qmul",
    "quantized_dot",
    "ulp",
    "BlockedFloatFormat",
    "BlockedVector",
    "BW_BFP",
    "PackedArray",
    "PACKED_4xFP8",
    "PACKED_2xFP16",
]
