"""Table 6, Plasticine columns: latency / effective TFLOPS / power.

One benchmark per DeepBench point.  Each run executes the full pipeline —
build the loop-based program, trace it, map and place it on the Table 3
chip, cycle-simulate, integrate power — and the assertions compare the
result against the paper's published row (±15% latency, ±40% power).
"""

import pytest

from repro.harness.paper_data import TABLE6, paper_row
from repro.harness.report import format_table
from repro.serving import ServingEngine
from repro.workloads.deepbench import RNNTask, table6_tasks


def _cold_serve(task: RNNTask):
    """A fresh engine per call: every round times the full compile."""
    return ServingEngine("plasticine").serve(task).result

_ROWS = []


@pytest.mark.parametrize(
    "task", table6_tasks(), ids=lambda t: t.name
)
def test_plasticine_point(benchmark, task: RNNTask):
    result = benchmark.pedantic(
        _cold_serve, args=(task,), rounds=3, iterations=1, warmup_rounds=1
    )
    paper = paper_row(task.kind, task.hidden)
    _ROWS.append(
        [
            task.name,
            result.latency_ms,
            paper.latency_plasticine_ms,
            result.effective_tflops,
            paper.tflops_plasticine,
            result.power_w,
            paper.power_plasticine_w,
        ]
    )
    assert result.latency_ms == pytest.approx(paper.latency_plasticine_ms, rel=0.15)
    assert result.effective_tflops == pytest.approx(paper.tflops_plasticine, rel=0.15)
    assert result.power_w == pytest.approx(paper.power_plasticine_w, rel=0.40)


def test_render_plasticine_rows(benchmark, artifact):
    # Runs after the parametrized points; renders the collected rows.
    assert len(_ROWS) == len(TABLE6)
    text = benchmark(
        format_table,
        ["task", "latency ms", "paper ms", "TFLOPS", "paper TFLOPS", "power W", "paper W"],
        _ROWS,
        title="Table 6 (Plasticine columns): measured vs paper",
    )
    artifact("table6_plasticine", text)
