"""The paper's abstract, as a benchmark.

"...a geometric speedup of 30x in performance, 1.6x in area, and 2x in
power efficiency compared to a Tesla V100 GPU, and a geometric speedup
of 2x compared to Microsoft Brainwave implementation on a Stratix 10
FPGA."

Runs the whole evaluation once and checks every quantitative claim.
"""

from repro.analysis.efficiency import abstract_claims


def test_abstract_claims(benchmark, artifact):
    report = benchmark.pedantic(abstract_claims, rounds=1, iterations=1)
    artifact("abstract_claims", report.text)
    failing = [c.claim for c in report.checks if not c.holds]
    assert not failing, f"claims outside the shape band: {failing}"


def test_within_5ms_claim(benchmark, artifact):
    # Section 5.2: "Both BW and Plasticine deliver promising latencies
    # within 5ms for all problem sizes" — checked for every per-request
    # task (T <= 375; the T=1500 GRU is a 1500-step sequence whose
    # per-step latency is ~1 us).
    from repro.api import serve_on_brainwave, serve_on_plasticine
    from repro.harness.report import format_table
    from repro.workloads.deepbench import table6_tasks

    def sweep():
        rows = []
        for t in table6_tasks():
            pl = serve_on_plasticine(t)
            bw = serve_on_brainwave(t)
            rows.append([t.name, pl.latency_ms, bw.latency_ms])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    artifact(
        "claims_5ms",
        format_table(
            ["task", "plasticine ms", "brainwave ms"],
            rows,
            title="Section 5.2: spatial architectures within 5 ms",
        ),
    )
    for name, pl_ms, bw_ms in rows:
        t_steps = int(name.split("-t")[1])
        if t_steps <= 375:
            assert pl_ms < 5.0, name
            assert bw_ms < 5.0, name
