"""Scheduler comparison on a bursty multi-tenant workload.

The acceptance bar for the traffic/scheduling subsystem: on a bursty
two-tenant workload (MMPP interactive bursts with a tight SLO over a
steady bulk tenant with a relaxed one), earliest-deadline-first must
attain at least as many SLOs as FIFO — deadline awareness cannot lose to
deadline blindness.  The benchmark renders the full comparison across
every registered scheduler and also times the event loop itself to keep
the O(n log n) stream simulation honest.
"""

import importlib.util
import time
from pathlib import Path

from repro.harness.report import format_table
from repro.serving import ServingEngine, available_schedulers, poisson_arrivals
from repro.workloads.deepbench import task

# The benchmark gates the exact workload the example narrates, so the
# two can never drift apart: load build_workload() from the example.
_EXAMPLE = Path(__file__).parent.parent / "examples" / "multi_tenant_serving.py"
_spec = importlib.util.spec_from_file_location("multi_tenant_serving", _EXAMPLE)
_example = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_example)

INTERACTIVE_SLO_MS = _example.INTERACTIVE_SLO_MS
BULK_SLO_MS = _example.BULK_SLO_MS
_bursty_workload = _example.build_workload


def test_edf_attains_at_least_fifo(artifact):
    workload = _bursty_workload()
    attainment = {}
    rows = []
    for name in available_schedulers():
        report = ServingEngine("gpu").serve_stream(workload, scheduler=name)
        attainment[name] = report.slo_attainment
        tenants = report.per_tenant()
        rows.append(
            [
                name,
                f"{100 * report.slo_attainment:.1f}%",
                round(tenants["interactive"].p99_ms, 2),
                round(tenants["bulk"].p99_ms, 2),
            ]
        )
    artifact(
        "scheduler_comparison",
        format_table(
            ["scheduler", "SLO attained", "interactive P99 ms", "bulk P99 ms"],
            rows,
            title=(
                "Bursty two-tenant workload on one GPU "
                f"(interactive {INTERACTIVE_SLO_MS:.0f} ms / "
                f"bulk {BULK_SLO_MS:.0f} ms SLOs)"
            ),
        ),
    )
    assert attainment["edf"] >= attainment["fifo"], (
        f"EDF attained {attainment['edf']:.3f} < FIFO {attainment['fifo']:.3f} "
        f"on a bursty deadline-tagged workload"
    )
    # The burst-heavy workload must actually separate the disciplines.
    assert attainment["edf"] > 0.95
    assert attainment["fifo"] < attainment["edf"]


def test_event_loop_throughput(artifact):
    # One warm engine, 20k requests: the event loop (heap + scheduler
    # ops) should push tens of thousands of requests/second of simulated
    # traffic — it is O(n log n) bookkeeping over a cached service time.
    t = task("lstm", 512, 25)
    engine = ServingEngine("brainwave")
    engine.serve(t)  # compile outside the timed region
    arrivals = poisson_arrivals(t, rate_per_s=5000.0, n_requests=20_000, seed=3)
    t0 = time.perf_counter()
    report = engine.serve_stream(arrivals, slo_ms=5.0, scheduler="edf")
    elapsed = time.perf_counter() - t0
    throughput = report.n_requests / elapsed
    artifact(
        "event_loop_throughput",
        format_table(
            ["requests", "seconds", "requests/s"],
            [[report.n_requests, elapsed, round(throughput)]],
            title="Discrete-event loop throughput (brainwave, EDF)",
        ),
    )
    assert report.n_requests == 20_000
    assert throughput > 50_000, f"event loop too slow: {throughput:.0f} req/s"
