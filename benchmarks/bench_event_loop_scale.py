"""Million-request streams through the optimized event loop.

The ROADMAP's north star is "heavy traffic from millions of users"; the
paper's serving scenario is a stream of batch-1 requests under a
millisecond SLO.  This benchmark drives ≥1M-request seeded streams
through the discrete-event simulator and guards the three properties
that make that feasible on one machine:

* **Throughput** — ``mode="summary"`` with a presorted stream and the
  per-shape cost memo must be **≥10×** the events/sec of the pre-PR
  loop (the general heap path recosting every request, materializing a
  full report) on the 100k-request fifo/none configuration, and the
  million-request run must clear an absolute events/sec floor.
* **O(1) memory** — the summary mode's peak traced memory must be
  independent of stream length (a 5× longer stream may not grow the
  peak), while the materialized ``mode="full"`` grows linearly (also
  checked, so the comparison stays honest).
* **Correctness under speed** — the summary's exact counters (request
  count, SLO attainment, mean sojourn) must match the materialized
  report on the comparison stream.

Run under pytest (CI's benchmarks job) or standalone::

    python benchmarks/bench_event_loop_scale.py [--quick]

Either way the metrics land in ``benchmarks/out/event_loop_scale.json``
(the perf-smoke CI job uploads it as an artifact and fails the build on
a regression below the pinned floors).
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
import tracemalloc
from pathlib import Path

# Standalone bootstrap (python benchmarks/bench_event_loop_scale.py
# without PYTHONPATH=src): put the in-repo package on the path first.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.harness.report import format_table
from repro.serving import NoneBatcher, ServingEngine, ZipfLength, poisson_arrivals
from repro.workloads.deepbench import task

OUT_JSON = Path(__file__).parent / "out" / "event_loop_scale.json"

TASK = task("lstm", 512, 25)
RATE = 1000.0
SLO_MS = 5.0
SEED = 3

#: Absolute events/sec floor for the big fifo/none summary run (2 events
#: per request: one arrival, one completion; lazy generation included).
#: Measured ~700k ev/s on a dev laptop; pinned conservatively so slow CI
#: runners pass while a real event-loop regression still fails.
EVENTS_PER_S_FLOOR = 150_000.0

#: Required speedup of summary+presorted+memo over the pre-PR-equivalent
#: loop on the 100k-request fifo/none comparison.
SPEEDUP_FLOOR = 10.0


class _HeapPathNoneBatcher(NoneBatcher):
    """Batch-1 policy that *overrides* ``hold_until`` (returning ``now``
    unchanged), which defeats the no-hold fast-path detection and forces
    ``run_stream`` onto the general heap loop — the pre-PR code path.
    Timeline-identical to ``"none"``; only the loop machinery differs,
    which is exactly what the baseline should measure."""

    def hold_until(self, queue, now):
        return now


def _measure(engine: ServingEngine, arrivals, **kwargs):
    kwargs.setdefault("slo_ms", SLO_MS)
    t0 = time.perf_counter()
    report = engine.serve_stream(arrivals, **kwargs)
    return time.perf_counter() - t0, report


def _lazy_stream(n: int, *, seed: int = SEED, lengths=None):
    return poisson_arrivals(
        TASK,
        rate_per_s=RATE,
        n_requests=n,
        seed=seed,
        lengths=lengths,
        materialize=False,
    )


def _comparison(n: int) -> dict:
    """Pre-PR-equivalent loop vs the optimized one, same 100k arrivals.

    The arrivals are materialized once and shared, so the comparison
    measures the loop (event machinery + per-request costing +
    accounting), not traffic generation.
    """
    arrivals = poisson_arrivals(TASK, rate_per_s=RATE, n_requests=n, seed=SEED)
    baseline_s, baseline_report = _measure(
        ServingEngine("gpu", memoize=False),
        arrivals,
        batcher=lambda: _HeapPathNoneBatcher(),
    )
    optimized_s, summary = _measure(
        ServingEngine("gpu"), arrivals, mode="summary", presorted=True
    )
    return {
        "n_requests": n,
        "baseline_events_per_s": 2 * n / baseline_s,
        "optimized_events_per_s": 2 * n / optimized_s,
        "speedup": baseline_s / optimized_s,
        # Exact-counter cross-check: the summary must agree with the
        # materialized report it replaces.
        "counters_match": bool(
            summary.n_requests == baseline_report.n_requests
            and summary.slo_attainment == baseline_report.slo_attainment
            and abs(summary.mean_ms - baseline_report.mean_ms)
            <= 1e-9 * abs(baseline_report.mean_ms)
        ),
        "p99_ms_full": baseline_report.p99_ms,
        "p99_ms_summary": summary.p99_ms,
    }


def _big_runs(n: int) -> dict:
    """The headline runs: ≥1M lazily generated requests, O(1) memory."""
    fifo_s, fifo = _measure(
        ServingEngine("gpu"), _lazy_stream(n), mode="summary", presorted=True
    )
    bucket_s, bucket = _measure(
        ServingEngine("gpu"),
        _lazy_stream(n, seed=SEED + 1, lengths=ZipfLength(10, 200, alpha=1.6)),
        mode="summary",
        presorted=True,
        scheduler="edf",
        batcher="bucket",
        max_batch=8,
        slo_ms=50.0,
    )
    return {
        "n_requests": n,
        "fifo_none": {
            "elapsed_s": fifo_s,
            "events_per_s": 2 * n / fifo_s,
            "requests_per_s": n / fifo_s,
            "p99_ms": fifo.p99_ms,
            "slo_attainment": fifo.slo_attainment,
        },
        "edf_bucket": {
            "elapsed_s": bucket_s,
            "requests_per_s": n / bucket_s,
            "mean_batch_size": bucket.mean_batch_size,
            "padding_waste_frac": bucket.padding_waste_frac,
            "slo_attainment": bucket.slo_attainment,
        },
    }


def _peak_mb(n: int, mode: str) -> float:
    """Peak traced memory (MB) of one lazily-fed stream run."""
    engine = ServingEngine("gpu")
    stream = _lazy_stream(n)
    tracemalloc.start()
    engine.serve_stream(stream, slo_ms=SLO_MS, mode=mode, presorted=True)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak / 1e6


def _memory(n_small: int, n_large: int) -> dict:
    summary_small = _peak_mb(n_small, "summary")
    summary_large = _peak_mb(n_large, "summary")
    full_small = _peak_mb(n_small, "full")
    full_large = _peak_mb(n_large, "full")
    return {
        "n_small": n_small,
        "n_large": n_large,
        "summary_peak_mb": {"small": summary_small, "large": summary_large},
        "full_peak_mb": {"small": full_small, "large": full_large},
        "summary_growth": summary_large / summary_small,
        "full_growth": full_large / full_small,
    }


def run(quick: bool = False) -> dict:
    comparison = _comparison(30_000 if quick else 100_000)
    big = _big_runs(150_000 if quick else 1_000_000)
    memory = _memory(*((10_000, 50_000) if quick else (20_000, 100_000)))
    return {
        "quick": quick,
        "workload": f"{TASK.name} poisson@{RATE:.0f}/s seed={SEED}",
        "comparison": comparison,
        "big": big,
        "memory": memory,
        "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1e3,
        "floors": {
            "events_per_s": EVENTS_PER_S_FLOOR,
            "speedup": SPEEDUP_FLOOR,
        },
    }


def check(metrics: dict) -> list[str]:
    """The regressions this benchmark exists to catch."""
    failures = []
    cmp_ = metrics["comparison"]
    if cmp_["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"summary loop is only {cmp_['speedup']:.1f}x the pre-PR loop "
            f"on the {cmp_['n_requests']}-request fifo/none config "
            f"(floor: {SPEEDUP_FLOOR:.0f}x)"
        )
    if not cmp_["counters_match"]:
        failures.append(
            "StreamSummary counters diverged from the materialized report"
        )
    big = metrics["big"]["fifo_none"]
    if big["events_per_s"] < EVENTS_PER_S_FLOOR:
        failures.append(
            f"big-run event rate {big['events_per_s']:.0f}/s fell below "
            f"the {EVENTS_PER_S_FLOOR:.0f}/s floor"
        )
    mem = metrics["memory"]
    if mem["summary_growth"] > 1.5:
        failures.append(
            f"summary-mode peak memory grew {mem['summary_growth']:.2f}x "
            f"on a {mem['n_large'] / mem['n_small']:.0f}x longer stream "
            f"(must be independent of stream length)"
        )
    if mem["full_growth"] < 2.0:
        failures.append(
            f"full-mode peak memory grew only {mem['full_growth']:.2f}x on "
            f"a {mem['n_large'] / mem['n_small']:.0f}x longer stream — the "
            f"baseline comparison is no longer meaningful"
        )
    bucket = metrics["big"]["edf_bucket"]
    if not bucket["mean_batch_size"] >= 1.0:
        failures.append("edf/bucket run produced an impossible batch size")
    return failures


def _render(metrics: dict) -> str:
    cmp_ = metrics["comparison"]
    big = metrics["big"]
    mem = metrics["memory"]
    rows = [
        [
            f"pre-PR loop (heap, full, no memo) {cmp_['n_requests'] // 1000}k",
            f"{cmp_['baseline_events_per_s']:,.0f}",
            "-",
            f"{mem['full_peak_mb']['large']:.1f} @ {mem['n_large'] // 1000}k",
        ],
        [
            f"summary+presorted+memo {cmp_['n_requests'] // 1000}k",
            f"{cmp_['optimized_events_per_s']:,.0f}",
            f"{cmp_['speedup']:.1f}x",
            f"{mem['summary_peak_mb']['large']:.2f} @ {mem['n_large'] // 1000}k",
        ],
        [
            f"summary fifo/none {big['n_requests'] // 1000}k (lazy gen)",
            f"{big['fifo_none']['events_per_s']:,.0f}",
            "-",
            "O(1)",
        ],
        [
            f"summary edf/bucket {big['n_requests'] // 1000}k (zipf lengths)",
            f"{2 * big['n_requests'] / big['edf_bucket']['elapsed_s']:,.0f}",
            "-",
            "O(1)",
        ],
    ]
    return format_table(
        ["configuration", "events/s", "speedup", "peak MB"],
        rows,
        title=f"Event-loop scale: {metrics['workload']} "
        f"(floors: {SPEEDUP_FLOOR:.0f}x, "
        f"{EVENTS_PER_S_FLOOR:,.0f} ev/s; summary mem growth "
        f"{mem['summary_growth']:.2f}x vs full {mem['full_growth']:.2f}x)",
    )


def _write_json(metrics: dict) -> None:
    OUT_JSON.parent.mkdir(exist_ok=True)
    OUT_JSON.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")


def test_event_loop_scale(artifact):
    metrics = run(quick=False)
    _write_json(metrics)
    artifact("event_loop_scale", _render(metrics))
    failures = check(metrics)
    assert not failures, "; ".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller request counts (the CI perf-smoke configuration)",
    )
    args = parser.parse_args(argv)
    metrics = run(quick=args.quick)
    _write_json(metrics)
    print(_render(metrics))
    print(f"[json: {OUT_JSON}]")
    failures = check(metrics)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
