"""Figure 4: fragmentation of MVM-tiled vs loop-based designs.

Sweeps utilization over the DeepBench sizes (and a misaligned sweep) at
the published configurations — Brainwave's 400x40x6 tiles vs the
loop-based rv=64 dot products — reproducing the 2-D vs 1-D story.
"""

from repro.analysis import loop_utilization, mvm_tile_utilization, utilization_sweep
from repro.harness.figures import figure4_fragmentation


def test_figure4_sweep(benchmark, artifact):
    text = benchmark(figure4_fragmentation, [256, 512, 1024, 1536, 2048, 2560, 2816])
    artifact("figure4", text)


def test_loop_always_at_least_as_utilized(benchmark):
    def check():
        for p in utilization_sweep():
            assert p.loop_utilization >= p.mvm_utilization
        return True

    assert benchmark(check)


def test_worst_case_small_model(benchmark):
    # H=256: Brainwave covers 400x720 slots for a 256x512 MVM (< 46%),
    # while the loop-based design is fully utilized (rv divides R).
    def point():
        return (
            mvm_tile_utilization(256, 512, hv=400, rv=40, ru=6),
            loop_utilization(256, 512, rv=64, ru=8, hu=4),
        )

    mvm, loop = benchmark(point)
    assert mvm < 0.5
    assert loop == 1.0


def test_misaligned_sweep(benchmark, artifact):
    # Odd sizes: the loop design degrades only on R, the MVM design on
    # both dimensions (Figure 4's exact geometry).  The loop design's R
    # granularity is rv*ru, so a fair comparison lets the DSE shrink ru
    # for misaligned sizes (ru=2 -> 128-element blocks); at ru=8 its
    # 512-element granularity can locally lose to Brainwave's 240.
    from repro.harness.report import format_table

    def rows():
        out = []
        for h in (300, 700, 1100, 1900, 2500):
            r = 2 * h
            out.append(
                [h,
                 round(mvm_tile_utilization(h, r, 400, 40, 6), 3),
                 round(loop_utilization(h, r, 64, 2, 4), 3)]
            )
        return out

    table = benchmark(rows)
    artifact(
        "figure4_misaligned",
        format_table(
            ["H (misaligned)", "MVM util", "loop util (tuned ru=2)"],
            table,
            title="Figure 4: misaligned problem sizes",
        ),
    )
    for _, mvm, loop in table:
        assert loop >= mvm
