"""Fault-injection overhead and SLO degradation under unreliable hardware.

PR 7 added seeded fault injection (``repro.serving.faults``): replica
crashes with recovery, heavy-tail stragglers, priority preemption, and
per-request timeouts/retries/hedges.  The perfect-machine contract is
that ``faults="none"`` is not merely *statistically* identical to a run
that never mentions faults — it is the **same code path**, so the
report is bit-identical and the event-loop throughput unchanged.  This
benchmark guards that contract and records what faults actually cost:

* **No-fault parity** — a full-mode stream served with no fault
  arguments and one served with ``faults="none"`` must produce
  identical response timelines.  Checked unconditionally: it is the
  correctness contract, not a performance number.
* **Overhead floor** — events/s of the ``faults="none"`` summary run
  must stay within noise of the fault-free baseline (floor 0.7x, far
  above any real regression; both sides run the identical loop).  The
  chaos-mode throughput is recorded alongside for the curious — the
  fault loop pays for copy tracking and crash timelines, so it is
  allowed to be slower, not the default path.
* **SLO-vs-crash-rate sweep** — a 2-replica fleet at a fixed arrival
  rate, swept across mean-time-between-failure values.  Attainment
  under the harshest crash regime must not beat the perfect machine,
  and every point conserves its requests.

Run under pytest (CI's benchmarks job) or standalone::

    python benchmarks/bench_fault_overhead.py [--quick]

Either way the metrics land in ``benchmarks/out/fault_overhead.json``
(the perf-smoke CI job uploads it as an artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# Standalone bootstrap (python benchmarks/bench_fault_overhead.py
# without PYTHONPATH=src): put the in-repo package on the path first.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.harness.report import format_table
from repro.serving import Fleet, ServingEngine, get_fault_policy, poisson_arrivals
from repro.workloads.deepbench import task

OUT_JSON = Path(__file__).parent / "out" / "fault_overhead.json"

TASK = task("lstm", 512, 25)
#: Two gpu replicas sustain ~2.7k req/s on this task; 2k/s keeps the
#: perfect machine comfortably inside the SLO so the crash sweep has
#: headroom to visibly degrade it.
RATE = 2_000.0
SLO_MS = 5.0
SEED = 2026

#: ``faults="none"`` is the same loop as no fault arguments at all, so
#: its throughput ratio is ~1.0 modulo timer noise; 0.7 only trips if
#: the perfect-machine path starts paying for the fault machinery.
NONE_OVERHEAD_FLOOR = 0.7

#: Crash sweep: mean time between failures per replica, seconds.  None
#: is the perfect machine; 0.05 s crashes each replica many times per
#: simulated second.
MTBF_SWEEP = (None, 1.0, 0.25, 0.05)
MTTR_S = 0.05


def _stream(n: int):
    return poisson_arrivals(TASK, rate_per_s=RATE, n_requests=n, seed=SEED)


def _parity(n: int) -> dict:
    """Full-mode timelines with and without the faults argument."""
    arrivals = _stream(n)
    engine = ServingEngine("gpu")
    plain = engine.serve_stream(arrivals, slo_ms=SLO_MS)
    none = engine.serve_stream(arrivals, slo_ms=SLO_MS, faults="none")
    return {
        "n_requests": n,
        "identical": bool(
            plain.responses == none.responses
            and plain.p99_ms == none.p99_ms
            and not none.fault_stats.any
        ),
        "p99_ms": plain.p99_ms,
    }


def _overhead(n: int) -> dict:
    """Events/s of the perfect machine vs faults="none" vs chaos."""
    arrivals = _stream(n)
    engine = ServingEngine("gpu")
    elapsed: dict[str, float] = {}
    for name, kwargs in (
        ("baseline", {}),
        ("none", {"faults": "none"}),
        ("chaos", {"faults": "chaos", "fault_seed": SEED}),
    ):
        t0 = time.perf_counter()
        report = engine.serve_stream(
            arrivals, slo_ms=SLO_MS, mode="summary", **kwargs
        )
        elapsed[name] = time.perf_counter() - t0
        assert report.n_requests == n
    rps = {name: n / s for name, s in elapsed.items()}
    return {
        "n_requests": n,
        "elapsed_s": elapsed,
        "requests_per_s": rps,
        "none_ratio": rps["none"] / rps["baseline"],
        "chaos_ratio": rps["chaos"] / rps["baseline"],
    }


def _slo_sweep(n: int) -> list[dict]:
    """SLO attainment of a 2-replica fleet as crashes get more frequent."""
    arrivals = _stream(n)
    points = []
    for mtbf_s in MTBF_SWEEP:
        faults = (
            "none"
            if mtbf_s is None
            else get_fault_policy("crash", mtbf_s=mtbf_s, mttr_s=MTTR_S)
        )
        report = Fleet("gpu", replicas=2, policy="least-loaded").serve_stream(
            arrivals, slo_ms=SLO_MS, faults=faults, fault_seed=SEED
        )
        points.append(
            {
                "mtbf_s": mtbf_s,
                "crashes": report.fault_stats.crashes,
                "downtime_s": report.fault_stats.downtime_s,
                "slo_attainment": report.slo_attainment,
                "p99_ms": report.p99_ms,
                "conserved": bool(report.n_requests == n),
            }
        )
    return points


def run(quick: bool = False) -> dict:
    return {
        "quick": quick,
        "workload": f"{TASK.name} poisson@{RATE:.0f}/s seed={SEED}",
        "parity": _parity(2_000 if quick else 10_000),
        "overhead": _overhead(10_000 if quick else 60_000),
        "slo_sweep": _slo_sweep(1_500 if quick else 6_000),
        "floors": {"none_overhead": NONE_OVERHEAD_FLOOR},
    }


def check(metrics: dict) -> list[str]:
    """The regressions this benchmark exists to catch."""
    failures = []
    if not metrics["parity"]["identical"]:
        failures.append(
            'faults="none" no longer matches the fault-free timeline '
            "bit for bit"
        )
    ratio = metrics["overhead"]["none_ratio"]
    if ratio < NONE_OVERHEAD_FLOOR:
        failures.append(
            f'faults="none" sustained only {ratio:.2f}x of the fault-free '
            f"throughput (floor {NONE_OVERHEAD_FLOOR:.1f}x): the perfect "
            f"machine is paying for the fault machinery"
        )
    sweep = metrics["slo_sweep"]
    if any(not point["conserved"] for point in sweep):
        failures.append("a crash-sweep point lost requests")
    perfect = sweep[0]["slo_attainment"]
    harshest = sweep[-1]["slo_attainment"]
    if harshest > perfect:
        failures.append(
            f"SLO attainment rose under the harshest crash regime "
            f"({harshest:.3f} > {perfect:.3f}): crashes are not costing "
            f"anything"
        )
    if sweep[-1]["p99_ms"] < sweep[0]["p99_ms"]:
        failures.append(
            f"P99 fell under the harshest crash regime "
            f"({sweep[-1]['p99_ms']:.3f} < {sweep[0]['p99_ms']:.3f} ms)"
        )
    for point in sweep[1:]:
        if point["crashes"] == 0:
            failures.append(
                f"mtbf={point['mtbf_s']}s injected zero crashes — the "
                f"sweep is not exercising the fault path"
            )
    return failures


def _render(metrics: dict) -> str:
    overhead = metrics["overhead"]
    rows = [
        [
            "perfect machine" if p["mtbf_s"] is None else f"mtbf {p['mtbf_s']}s",
            p["crashes"],
            f"{p['downtime_s'] * 1e3:.1f}",
            f"{p['p99_ms']:.3f}",
            f"{100.0 * p['slo_attainment']:.1f}%",
        ]
        for p in metrics["slo_sweep"]
    ]
    parity = "EXACT" if metrics["parity"]["identical"] else "BROKEN"
    title = (
        f"Fault overhead: {metrics['workload']} — no-fault parity {parity}, "
        f'faults="none" at {overhead["none_ratio"]:.2f}x baseline '
        f"(chaos {overhead['chaos_ratio']:.2f}x)"
    )
    return format_table(
        ["crash regime (2 replicas)", "crashes", "downtime ms", "P99 ms",
         "SLO attained"],
        rows,
        title=title,
    )


def _write_json(metrics: dict) -> None:
    OUT_JSON.parent.mkdir(exist_ok=True)
    OUT_JSON.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")


def test_fault_overhead(artifact):
    metrics = run(quick=False)
    _write_json(metrics)
    artifact("fault_overhead", _render(metrics))
    failures = check(metrics)
    assert not failures, "; ".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller request counts (the CI perf-smoke configuration)",
    )
    args = parser.parse_args(argv)
    metrics = run(quick=args.quick)
    _write_json(metrics)
    print(_render(metrics))
    print(f"[json: {OUT_JSON}]")
    failures = check(metrics)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
