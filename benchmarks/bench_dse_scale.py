"""DSE at pool speed: parallel, pruned, memoized search loops.

The shared runner (:mod:`repro.dse.runner`) promises that both search
loops — the capacity planner and the chip tuner — got faster without
changing a single answer.  This benchmark holds it to that:

* **Parity, unconditionally** — ``plan_capacity(workers=N)`` is
  bit-identical to the sequential plan (same JSON, byte for byte), the
  pruned plan picks the same best fleet and feasible set as the full
  replay, ``search(workers=N)`` returns the same points as the
  sequential sweep, and a warm rerun of the chip DSE builds zero
  programs.  These checks run on every machine, 1-core CI included.
* **Speedup floors, gated** — on a runner with >= 4 CPUs, 4 workers
  must finish both loops >= 2x faster than sequential.  A 1-core runner
  records the curve but cannot bind the floor.
* **Pruning saves real work** — on the capacity planner's CI workload
  (``bench_capacity_planner.PLAN_*``), the SLO-miss abort must cut
  simulated requests by >= 30% while choosing the identical best fleet.

Metrics land in ``benchmarks/out/dse_scale.json`` (uploaded by the
perf-smoke CI job).  Run under pytest (CI's benchmarks job) or
standalone::

    python benchmarks/bench_dse_scale.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

# Standalone bootstrap (python benchmarks/bench_dse_scale.py without
# PYTHONPATH=src): put the in-repo package on the path first.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from bench_capacity_planner import (
    PLAN_PEAK_RATE,
    PLAN_SLO_MS,
    PLAN_SPACE,
    PLAN_TASK,
)
from repro.dse import ParameterSpace, plan_capacity, search
from repro.dse.search import _MEMO
from repro.harness.report import format_table
from repro.workloads.deepbench import task

OUT_JSON = Path(__file__).parent / "out" / "dse_scale.json"

#: Floors only bind on a real multi-core runner.
CPU_GATE = 4
SPEEDUP_FLOOR = 2.0
#: Minimum fraction of simulated requests pruning must save on the
#: planner's CI workload.
PRUNE_CUT_FLOOR = 0.30

#: Chip-tuner scaling workload: the largest Table 6 LSTM over the full
#: default grid crossed with the optimization-pass axis.
TUNE_TASK = task("lstm", 2048, 25)
TUNE_SPACE = ParameterSpace.with_pass_axis()

WORKER_COUNTS = (1, 2, 4)


def _plan_kwargs(n: int) -> dict:
    return dict(
        slo_ms=PLAN_SLO_MS,
        peak_rate_per_s=PLAN_PEAK_RATE,
        n_requests=n,
        space=PLAN_SPACE,
    )


def _parity(n: int) -> dict:
    """Every acceleration axis, checked for exactness on one workload."""
    kwargs = _plan_kwargs(n)
    sequential = plan_capacity(PLAN_TASK, prune=False, **kwargs)
    pooled = {
        w: plan_capacity(PLAN_TASK, prune=False, workers=w, **kwargs)
        for w in WORKER_COUNTS[1:]
    }
    pruned = plan_capacity(PLAN_TASK, prune=True, **kwargs)
    _MEMO.clear()
    chip_seq = search(TUNE_TASK, space=TUNE_SPACE)
    chip_par = search(TUNE_TASK, space=TUNE_SPACE, workers=2)
    warm = search(TUNE_TASK, space=TUNE_SPACE)
    return {
        "n_requests": n,
        "plan_identical": all(
            p.dumps() == sequential.dumps() for p in pooled.values()
        ),
        "prune_best_identical": pruned.best == sequential.best,
        "prune_feasible_identical": (
            pruned.feasible_points() == sequential.feasible_points()
        ),
        "search_identical": (
            chip_par.points == chip_seq.points
            and chip_par.best == chip_seq.best
        ),
        "warm_program_builds": warm.stats.program_builds,
        "warm_memo_hits": warm.stats.memo_hits,
        "search_candidates": chip_seq.stats.candidates,
        "search_program_builds": chip_seq.stats.program_builds,
    }


def _pruning(n: int) -> dict:
    """The SLO-miss abort on the planner's CI workload."""
    kwargs = _plan_kwargs(n)
    full = plan_capacity(PLAN_TASK, prune=False, **kwargs)
    t0 = time.perf_counter()
    pruned = plan_capacity(PLAN_TASK, prune=True, **kwargs)
    elapsed = time.perf_counter() - t0
    budget = len(full.points) * n
    return {
        "n_requests": n,
        "candidates": len(full.points),
        "request_budget": budget,
        "simulated_requests": pruned.simulated_requests,
        "cut": 1.0 - pruned.simulated_requests / budget,
        "n_pruned": pruned.n_pruned,
        "best_mix_identical": pruned.best.mix == full.best.mix,
        "elapsed_s": elapsed,
    }


def _scaling(n: int) -> dict:
    """Wall-clock for both loops at 1/2/4 workers, pruning off so every
    candidate is the same amount of work."""
    plan_elapsed: dict[str, float] = {}
    kwargs = _plan_kwargs(n)
    for w in WORKER_COUNTS:
        t0 = time.perf_counter()
        plan_capacity(PLAN_TASK, prune=False, workers=w, **kwargs)
        plan_elapsed[str(w)] = time.perf_counter() - t0
    tune_elapsed: dict[str, float] = {}
    for w in WORKER_COUNTS:
        _MEMO.clear()  # cold sweep: workers fork from an empty memo
        t0 = time.perf_counter()
        search(TUNE_TASK, space=TUNE_SPACE, workers=w)
        tune_elapsed[str(w)] = time.perf_counter() - t0
    return {
        "n_requests": n,
        "planner": {
            "elapsed_s": plan_elapsed,
            "speedup": {
                str(w): plan_elapsed["1"] / plan_elapsed[str(w)]
                for w in WORKER_COUNTS
            },
        },
        "tuner": {
            "elapsed_s": tune_elapsed,
            "speedup": {
                str(w): tune_elapsed["1"] / tune_elapsed[str(w)]
                for w in WORKER_COUNTS
            },
        },
    }


def run(quick: bool = False) -> dict:
    cpu_count = os.cpu_count() or 1
    return {
        "quick": quick,
        "cpu_count": cpu_count,
        "floors_gated": cpu_count < CPU_GATE,
        "workload": (
            f"{PLAN_TASK.name} diurnal peak {PLAN_PEAK_RATE:.0f}/s slo "
            f"{PLAN_SLO_MS}ms x {PLAN_SPACE.n_candidates()} fleets; "
            f"{TUNE_TASK.name} chip sweep"
        ),
        "parity": _parity(600 if quick else 1_500),
        "pruning": _pruning(2_000 if quick else 4_000),
        "scaling": _scaling(1_000 if quick else 2_500),
        "floors": {
            "speedup_4w": SPEEDUP_FLOOR,
            "prune_cut": PRUNE_CUT_FLOOR,
            "cpu_gate": CPU_GATE,
        },
    }


def check(metrics: dict) -> list[str]:
    """The regressions this benchmark exists to catch."""
    failures = []
    parity = metrics["parity"]
    if not parity["plan_identical"]:
        failures.append(
            "plan_capacity(workers=N) lost bit-parity with the "
            "sequential plan"
        )
    if not (
        parity["prune_best_identical"] and parity["prune_feasible_identical"]
    ):
        failures.append(
            "pruning changed the planner's best fleet or feasible set"
        )
    if not parity["search_identical"]:
        failures.append(
            "search(workers=N) lost parity with the sequential chip sweep"
        )
    if parity["warm_program_builds"] != 0:
        failures.append(
            f"a warm chip sweep rebuilt {parity['warm_program_builds']} "
            "programs; the evaluation memo has regressed"
        )
    if parity["search_program_builds"] >= parity["search_candidates"]:
        failures.append(
            "the pass-config axis no longer shares one program per "
            "parameter point"
        )
    pruning = metrics["pruning"]
    if not pruning["best_mix_identical"]:
        failures.append("pruning changed the chosen fleet on the CI workload")
    if pruning["cut"] < PRUNE_CUT_FLOOR:
        failures.append(
            f"pruning saved only {100 * pruning['cut']:.1f}% of simulated "
            f"requests (floor: {100 * PRUNE_CUT_FLOOR:.0f}%)"
        )
    if metrics["floors_gated"]:
        pass  # 1-core runner: the curve is recorded but no floor can bind.
    else:
        for loop in ("planner", "tuner"):
            got = metrics["scaling"][loop]["speedup"]["4"]
            if got < SPEEDUP_FLOOR:
                failures.append(
                    f"4-worker {loop} speedup {got:.2f}x fell below the "
                    f"{SPEEDUP_FLOOR:.1f}x floor ({metrics['cpu_count']} CPUs)"
                )
    return failures


def _render(metrics: dict) -> str:
    parity = metrics["parity"]
    pruning = metrics["pruning"]
    scaling = metrics["scaling"]
    gate = (
        f"floors gated: {metrics['cpu_count']} CPU(s) < {CPU_GATE}"
        if metrics["floors_gated"]
        else "floors enforced"
    )
    rows = [
        [
            f"{loop}, {w} worker(s)",
            f"{scaling[loop]['elapsed_s'][str(w)]:.2f}",
            "-" if w == 1 else f"{scaling[loop]['speedup'][str(w)]:.2f}x",
        ]
        for loop in ("planner", "tuner")
        for w in WORKER_COUNTS
    ]
    rows.append(
        [
            f"pruning ({pruning['n_pruned']} of {pruning['candidates']} "
            "fleets aborted)",
            f"{pruning['elapsed_s']:.2f}",
            f"{100 * pruning['cut']:.0f}% requests cut",
        ]
    )
    rows.append(
        [
            f"warm chip sweep ({parity['search_candidates']} candidates)",
            "-",
            f"{parity['warm_memo_hits']} memo hits, 0 builds",
        ]
    )
    all_exact = (
        parity["plan_identical"]
        and parity["prune_best_identical"]
        and parity["prune_feasible_identical"]
        and parity["search_identical"]
    )
    return format_table(
        ["configuration", "wall s", "speedup / check"],
        rows,
        title=f"DSE scale: {metrics['workload']} — parity "
        f"{'EXACT' if all_exact else 'BROKEN'}, {gate}",
    )


def _write_json(metrics: dict) -> None:
    OUT_JSON.parent.mkdir(exist_ok=True)
    OUT_JSON.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")


def test_dse_scale(artifact):
    metrics = run(quick=False)
    _write_json(metrics)
    artifact("dse_scale", _render(metrics))
    failures = check(metrics)
    assert not failures, "; ".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller request counts (the CI perf-smoke configuration)",
    )
    args = parser.parse_args(argv)
    metrics = run(quick=args.quick)
    _write_json(metrics)
    print(_render(metrics))
    print(f"[json: {OUT_JSON}]")
    failures = check(metrics)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
