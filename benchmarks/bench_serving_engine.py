"""Serving-engine hot path: cold compile vs cached steady-state serves.

The engine's whole point is the compile-once split: the first request
for a task pays for parameter selection, program construction, mapping,
and the cycle simulation; every later request reuses the prepared model.
These benchmarks measure both sides of that split on the Plasticine
platform and pin the acceptance bar — warm serves at least 10x faster
than cold compiles (in practice it is orders of magnitude).
"""

import time

from repro.harness.report import format_table
from repro.serving import ServingEngine
from repro.workloads.deepbench import task

TASK = task("lstm", 1024, 25)
WARM_SERVES = 50


def _cold() -> None:
    # Fresh engine: every call re-runs the full compile pipeline.
    ServingEngine("plasticine").serve(TASK)


def test_cold_compile(benchmark):
    benchmark.pedantic(_cold, rounds=5, iterations=1, warmup_rounds=1)


def test_warm_cached_serve(benchmark):
    engine = ServingEngine("plasticine")
    engine.serve(TASK)  # compile outside the timed region

    def warm():
        engine.serve(TASK)

    benchmark(warm)
    assert engine.cache_stats.misses == 1  # never re-compiled


def test_warm_at_least_10x_faster_than_cold(artifact):
    # The acceptance bar, measured directly so it does not depend on
    # pytest-benchmark's fixture bookkeeping.
    t0 = time.perf_counter()
    engine = ServingEngine("plasticine")
    engine.serve(TASK)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(WARM_SERVES):
        engine.serve(TASK)
    warm_s = (time.perf_counter() - t0) / WARM_SERVES

    speedup = cold_s / warm_s
    artifact(
        "serving_engine_cache",
        format_table(
            ["phase", "seconds", "speedup vs cold"],
            [
                ["cold compile+serve", cold_s, 1.0],
                [f"warm serve (mean of {WARM_SERVES})", warm_s, speedup],
            ],
            title=f"ServingEngine compile-once split ({TASK.name})",
        ),
    )
    assert engine.cache_stats.misses == 1
    assert speedup >= 10.0, f"warm serves only {speedup:.1f}x faster than cold"


def test_batch_hits_cache_across_duplicates(benchmark):
    engine = ServingEngine("plasticine")
    requests = [TASK] * 20

    def batch():
        return engine.serve_batch(requests)

    responses = benchmark(batch)
    assert len(responses) == 20
    assert engine.cache_stats.misses == 1
