"""Sharded parallel replay scaling + live async server throughput.

PR 6 added two ways to spend more hardware on the same workload:
``repro.serving.parallel`` fans a seeded stream across a process pool
(one event loop per shard, merged summaries), and
``repro.serving.server`` serves real concurrent asyncio clients off the
same cost models.  This benchmark guards both:

* **Parity under parallelism** — the merged 4-shard summary must keep
  *exact* counter parity (requests, SLO attainment, batch sizes,
  per-replica counts, quantiles) with the equivalent round-robin fleet
  replay, whatever the pool size.  This is checked unconditionally: it
  is the correctness contract, not a performance number.
* **Scaling curve** — wall time of the same 4-shard run with 1, 2, and
  4 pool workers.  The speedup floors (≥1.6× at 2 workers, ≥2.5× at 4)
  are enforced only when the machine actually has ≥4 CPUs
  (``os.cpu_count()``); single-core CI still runs the curve and records
  it in the artifact, it just cannot fail a floor it physically cannot
  meet.
* **Live-server smoke** — a virtual-clock :class:`ServingServer` must
  sustain a wall-clock floor of requests/s across ≥50 concurrent
  closed-loop asyncio clients with zero request loss and a clean drain.

Run under pytest (CI's benchmarks job) or standalone::

    python benchmarks/bench_parallel_scale.py [--quick]

Either way the metrics land in ``benchmarks/out/parallel_scale.json``
(the perf-smoke CI job uploads it as an artifact).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import os
import sys
import time
from functools import partial
from pathlib import Path

# Standalone bootstrap (python benchmarks/bench_parallel_scale.py
# without PYTHONPATH=src): put the in-repo package on the path first.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.harness.report import format_table
from repro.serving import Fleet, ServingServer, poisson_arrivals, serve_parallel
from repro.workloads.deepbench import task

OUT_JSON = Path(__file__).parent / "out" / "parallel_scale.json"

TASK = task("lstm", 512, 25)
RATE = 20_000.0
SLO_MS = 5.0
SEED = 2026
SHARDS = 4

#: Speedup floors from the issue's acceptance criteria — enforced only
#: on machines with at least this many CPUs (a 1-core CI runner cannot
#: physically scale and must not fail on it).
SPEEDUP_FLOORS = {2: 1.6, 4: 2.5}
CPU_GATE = 4

#: Wall-clock requests/s the virtual-clock async server must sustain
#: across concurrent closed-loop clients.  Measured ~20k/s on a dev
#: machine; pinned conservatively for slow shared runners.
SERVER_RPS_FLOOR = 500.0


def _stream_factory(n: int):
    return partial(
        poisson_arrivals,
        TASK,
        rate_per_s=RATE,
        n_requests=n,
        seed=SEED,
        materialize=False,
    )


def _parity(n: int) -> dict:
    """Merged shards vs the round-robin fleet: exact counters, always."""
    make = _stream_factory(n)
    fleet = Fleet("gpu", replicas=SHARDS, policy="round-robin").serve_stream(
        make(), slo_ms=SLO_MS, mode="summary", presorted=True
    )
    merged = serve_parallel(
        make, "gpu", shards=SHARDS, workers=2, slo_ms=SLO_MS
    )
    exact = (
        merged.n_requests == fleet.n_requests
        and merged.slo_attainment == fleet.slo_attainment
        and merged.mean_batch_size == fleet.mean_batch_size
        and merged.padding_waste_frac == fleet.padding_waste_frac
        and merged.p50_ms == fleet.p50_ms
        and merged.p99_ms == fleet.p99_ms
        and merged.per_replica_counts == fleet.per_replica_counts
    )
    close = math.isclose(merged.mean_ms, fleet.mean_ms, rel_tol=1e-9)
    return {
        "n_requests": n,
        "shards": SHARDS,
        "counters_exact": bool(exact),
        "mean_ms_close": bool(close),
        "p99_ms": merged.p99_ms,
        "slo_attainment": merged.slo_attainment,
    }


def _scaling(n: int) -> dict:
    """Wall time of the identical 4-shard run at 1/2/4 pool workers."""
    make = _stream_factory(n)
    elapsed: dict[int, float] = {}
    for workers in (1, 2, 4):
        t0 = time.perf_counter()
        merged = serve_parallel(
            make, "gpu", shards=SHARDS, workers=workers, slo_ms=SLO_MS
        )
        elapsed[workers] = time.perf_counter() - t0
        assert merged.n_requests == n
    return {
        "n_requests": n,
        "shards": SHARDS,
        "elapsed_s": {str(w): s for w, s in elapsed.items()},
        "requests_per_s": {str(w): n / s for w, s in elapsed.items()},
        "speedup": {str(w): elapsed[1] / elapsed[w] for w in (2, 4)},
    }


def _server_smoke(n_clients: int, per_client: int) -> dict:
    """Concurrent closed-loop asyncio clients against a virtual clock."""

    async def client(server: ServingServer, n: int) -> int:
        done = 0
        for _ in range(n):
            await server.submit(TASK)
            done += 1
        return done

    async def main() -> tuple[ServingServer, float]:
        t0 = time.perf_counter()
        async with ServingServer("gpu", replicas=4, slo_ms=SLO_MS) as server:
            await asyncio.gather(
                *(client(server, per_client) for _ in range(n_clients))
            )
        return server, time.perf_counter() - t0

    server, wall_s = asyncio.run(main())
    n = n_clients * per_client
    return {
        "clients": n_clients,
        "requests": n,
        "wall_s": wall_s,
        "requests_per_s": n / wall_s,
        "accepted": server.accepted,
        "served": server.served,
        "conserved": bool(
            server.accepted == server.served == n
            and server.summary.n_requests == n
        ),
        "slo_attainment": server.summary.slo_attainment,
        "mean_batch_size": server.summary.mean_batch_size,
    }


def run(quick: bool = False) -> dict:
    cpu_count = os.cpu_count() or 1
    return {
        "quick": quick,
        "cpu_count": cpu_count,
        "floors_gated": cpu_count < CPU_GATE,
        "workload": f"{TASK.name} poisson@{RATE:.0f}/s seed={SEED}",
        "parity": _parity(30_000 if quick else 100_000),
        "scaling": _scaling(60_000 if quick else 200_000),
        "server": _server_smoke(*((25, 8) if quick else (50, 20))),
        "floors": {
            "speedup": {str(w): f for w, f in SPEEDUP_FLOORS.items()},
            "server_rps": SERVER_RPS_FLOOR,
            "cpu_gate": CPU_GATE,
        },
    }


def check(metrics: dict) -> list[str]:
    """The regressions this benchmark exists to catch."""
    failures = []
    parity = metrics["parity"]
    if not parity["counters_exact"]:
        failures.append(
            f"merged {parity['shards']}-shard summary lost exact counter "
            f"parity with the round-robin fleet on the "
            f"{parity['n_requests']}-request stream"
        )
    if not parity["mean_ms_close"]:
        failures.append("merged mean sojourn drifted beyond summation-order noise")
    if metrics["floors_gated"]:
        # 1-core runner: the curve is recorded but no floor can bind.
        pass
    else:
        for workers, floor in SPEEDUP_FLOORS.items():
            got = metrics["scaling"]["speedup"][str(workers)]
            if got < floor:
                failures.append(
                    f"{workers}-worker speedup {got:.2f}x fell below the "
                    f"{floor:.1f}x floor ({metrics['cpu_count']} CPUs)"
                )
    server = metrics["server"]
    if not server["conserved"]:
        failures.append(
            f"live server lost requests: accepted={server['accepted']} "
            f"served={server['served']} of {server['requests']}"
        )
    if server["requests_per_s"] < SERVER_RPS_FLOOR:
        failures.append(
            f"live server sustained only {server['requests_per_s']:.0f} "
            f"req/s across {server['clients']} clients "
            f"(floor: {SERVER_RPS_FLOOR:.0f}/s)"
        )
    return failures


def _render(metrics: dict) -> str:
    scaling = metrics["scaling"]
    server = metrics["server"]
    parity = metrics["parity"]
    gate = (
        f"floors gated: {metrics['cpu_count']} CPU(s) < {CPU_GATE}"
        if metrics["floors_gated"]
        else "floors enforced"
    )
    rows = [
        [
            f"{SHARDS} shards x {w} worker(s), {scaling['n_requests'] // 1000}k req",
            f"{scaling['elapsed_s'][str(w)]:.2f}",
            f"{scaling['requests_per_s'][str(w)]:,.0f}",
            "-" if w == 1 else f"{scaling['speedup'][str(w)]:.2f}x "
            f"(floor {SPEEDUP_FLOORS[w]:.1f}x)",
        ]
        for w in (1, 2, 4)
    ]
    rows.append(
        [
            f"async server, {server['clients']} closed-loop clients",
            f"{server['wall_s']:.2f}",
            f"{server['requests_per_s']:,.0f}",
            f"conserved={server['conserved']}",
        ]
    )
    return format_table(
        ["configuration", "wall s", "req/s", "speedup / check"],
        rows,
        title=f"Parallel scale: {metrics['workload']} — parity "
        f"{'EXACT' if parity['counters_exact'] else 'BROKEN'}, {gate}",
    )


def _write_json(metrics: dict) -> None:
    OUT_JSON.parent.mkdir(exist_ok=True)
    OUT_JSON.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")


def test_parallel_scale(artifact):
    metrics = run(quick=False)
    _write_json(metrics)
    artifact("parallel_scale", _render(metrics))
    failures = check(metrics)
    assert not failures, "; ".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller request counts (the CI perf-smoke configuration)",
    )
    args = parser.parse_args(argv)
    metrics = run(quick=args.quick)
    _write_json(metrics)
    print(_render(metrics))
    print(f"[json: {OUT_JSON}]")
    failures = check(metrics)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
