"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered text is printed (visible with ``pytest -s``) and also written to
``benchmarks/out/<name>.txt`` so artifacts survive captured stdout.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact():
    """Return a writer: artifact(name, text) prints and persists."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[artifact: benchmarks/out/{name}.txt]")

    return write
