"""The full Table 6: all four platforms, speedups, and geomeans.

This is the paper's headline artifact.  The assertions pin the three
geometric-mean speedups (2529x / 29.8x / 2.0x published) to the same
order of magnitude and ranking, and the crossover structure (Brainwave
ahead only on the largest models).
"""

from repro.harness.paper_data import TABLE6_GEOMEAN_SPEEDUPS
from repro.harness.tables import table6


def test_full_table6_with_geomeans(benchmark, artifact):
    result = benchmark.pedantic(table6, rounds=1, iterations=1)
    artifact("table6_full", result.text)

    geo = result.geomean_speedups
    paper = TABLE6_GEOMEAN_SPEEDUPS
    # Same ranking...
    assert geo["cpu"] > geo["gpu"] > geo["brainwave"] > 1.0
    # ...and same magnitude (the abstract's 30x GPU / 2x BW claims).
    assert 0.6 <= geo["cpu"] / paper["cpu"] <= 1.6
    assert 0.5 <= geo["gpu"] / paper["gpu"] <= 2.0
    assert 0.7 <= geo["brainwave"] / paper["brainwave"] <= 1.4


def test_crossover_to_brainwave(benchmark):
    # Section 5.2: "When serving very large RNNs, BW provides better
    # performance ... When serving small and medium size RNNs, Plasticine
    # performs better than BW with up to 30x better performance."
    result = benchmark.pedantic(table6, rounds=1, iterations=1)
    per = result.results
    small = per["gru-h512-t1"]
    assert small["plasticine"].speedup_over(small["brainwave"]) > 10
    large = per["gru-h2560-t375"]
    assert large["plasticine"].speedup_over(large["brainwave"]) < 1.0


def test_gru2816_brainwave_2x(benchmark):
    # Section 5.2: BW "up to 2x better than Plasticine on the largest GRU
    # (H=2816)".
    from repro.serving import ServingEngine
    from repro.workloads.deepbench import task

    t = task("gru", 2816)

    def both():
        return (
            ServingEngine("plasticine").serve(t).result,
            ServingEngine("brainwave").serve(t).result,
        )

    plast, bw = benchmark(both)
    advantage = plast.latency_s / bw.latency_s
    assert 1.3 < advantage < 2.7
