"""Table 6, baseline columns: CPU, GPU, and Brainwave latencies.

Each benchmark sweeps the ten DeepBench points through one platform model
and checks the shape against the paper: per-row tolerance bands reflect
each model's documented fidelity (CPU ±25%, Brainwave ±25%, GPU ±70% —
see EXPERIMENTS.md for the per-row discussion).
"""

import pytest

from repro.harness.paper_data import paper_row
from repro.harness.report import format_table
from repro.serving import ServingEngine
from repro.workloads.deepbench import table6_tasks


def _sweep(platform: str):
    engine = ServingEngine(platform)
    return {task.name: engine.serve(task).result for task in table6_tasks()}


def test_cpu_column(benchmark, artifact):
    results = benchmark(_sweep, "cpu")
    rows = []
    for task in table6_tasks():
        paper_ms = paper_row(task.kind, task.hidden).latency_cpu_ms
        measured = results[task.name].latency_ms
        rows.append([task.name, measured, paper_ms, measured / paper_ms])
        assert measured == pytest.approx(paper_ms, rel=0.25), task.name
    artifact(
        "table6_cpu",
        format_table(
            ["task", "cpu ms", "paper ms", "ratio"], rows,
            title="Table 6 (CPU column): Xeon Skylake model vs paper",
        ),
    )


def test_gpu_column(benchmark, artifact):
    results = benchmark(_sweep, "gpu")
    rows = []
    for task in table6_tasks():
        paper_ms = paper_row(task.kind, task.hidden).latency_gpu_ms
        measured = results[task.name].latency_ms
        rows.append([task.name, measured, paper_ms, measured / paper_ms])
        assert measured == pytest.approx(paper_ms, rel=0.70), task.name
    artifact(
        "table6_gpu",
        format_table(
            ["task", "gpu ms", "paper ms", "ratio"], rows,
            title="Table 6 (GPU column): Tesla V100 model vs paper",
        ),
    )


def test_brainwave_column(benchmark, artifact):
    results = benchmark(_sweep, "brainwave")
    rows = []
    for task in table6_tasks():
        paper_ms = paper_row(task.kind, task.hidden).latency_bw_ms
        measured = results[task.name].latency_ms
        rows.append([task.name, measured, paper_ms, measured / paper_ms])
        assert measured == pytest.approx(paper_ms, rel=0.25), task.name
    artifact(
        "table6_brainwave",
        format_table(
            ["task", "bw ms", "paper ms", "ratio"], rows,
            title="Table 6 (Brainwave column): Stratix 10 model vs paper",
        ),
    )


def test_brainwave_flat_latency_region(benchmark):
    # The structural signature: BW per-step latency is nearly constant
    # across LSTM sizes (instruction-chain bound).
    from repro.baselines import BrainwaveServingModel
    from repro.workloads.deepbench import RNNTask

    model = BrainwaveServingModel()

    def steps():
        return [
            model.step_trace(RNNTask("lstm", h, 25)).step_cycles
            for h in (256, 512, 1024, 1536, 2048)
        ]

    cycles = benchmark(steps)
    assert max(cycles) / min(cycles) < 1.2
