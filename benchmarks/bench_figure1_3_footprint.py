"""Figures 1-3: compute/memory layout comparison across implementations.

The paper's figures are diagrams; the quantitative content is the
intermediate-buffer story: BasicLSTM materializes O(H) vectors at every
kernel boundary, cuDNN fuses the post-MVM ops but keeps 4H pre-activation
buffers, Brainwave keeps hv-chunk buffers per tile engine, and the
loop-based design keeps only scalars in pipeline registers.
"""

from repro.analysis import (
    basic_lstm_footprint,
    brainwave_footprint,
    cudnn_lstm_footprint,
    loop_based_footprint,
)
from repro.harness.figures import figure1_3_footprints

SIZES = [256, 512, 1024, 1536, 2048, 2560]


def test_footprint_sweep(benchmark, artifact):
    text = benchmark(figure1_3_footprints, SIZES)
    artifact("figure1_3_footprints", text)


def test_footprint_ordering_all_sizes(benchmark):
    def check():
        for h in SIZES:
            vals = [
                basic_lstm_footprint(h).total_bytes,
                cudnn_lstm_footprint(h).total_bytes,
                brainwave_footprint(h).total_bytes,
                loop_based_footprint(h).total_bytes,
            ]
            assert vals[0] > vals[1], "cuDNN must beat BasicLSTM"
            assert vals[3] == min(vals), "loop-based must be smallest"
        return True

    assert benchmark(check)


def test_loop_intermediates_h_independent(benchmark):
    # The central claim of Figure 3: intermediate storage does not grow
    # with the model.
    def spread():
        sizes = [loop_based_footprint(h).total_bytes for h in SIZES]
        return max(sizes) - min(sizes)

    assert benchmark(spread) == 0


def test_cudnn_traffic_reduction_vs_basic(benchmark, artifact):
    from repro.harness.report import format_table

    def rows():
        out = []
        for h in SIZES:
            basic = basic_lstm_footprint(h).total_bytes
            cudnn = cudnn_lstm_footprint(h).total_bytes
            loop = loop_based_footprint(h).total_bytes
            out.append([h, basic, cudnn, loop, round(basic / loop, 1)])
        return out

    table = benchmark(rows)
    artifact(
        "figure1_3_reduction",
        format_table(
            ["H", "BasicLSTM B", "cuDNN B", "loop B", "Basic/loop"],
            table,
            title="Figures 1-3: intermediate bytes and reduction factor",
        ),
    )
