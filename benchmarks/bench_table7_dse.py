"""Table 7: per-task design parameters via design-space exploration.

Benchmarks the DSE itself (map + cycle-simulate every candidate point)
and checks the qualitative tuning rule of Section 5.2: small problems
spend leftover compute on ``hu``; large problems shift it to ``ru``/the
dot product, and the DSE never loses to the reconstructed paper choice.
"""

import pytest

from repro.dse import ParameterSpace, paper_params, tune
from repro.dse.search import _MEMO, evaluate
from repro.harness.report import format_table
from repro.harness.tables import table7
from repro.plasticine import PlasticineConfig
from repro.workloads.deepbench import table6_tasks, task


def test_dse_single_task(benchmark):
    result = benchmark.pedantic(tune, args=(task("lstm", 1024),), rounds=2, iterations=1)
    assert result.best.fits
    # The dot-product budget is maxed for a large model.
    assert result.best_params.hu * result.best_params.ru >= 16


def test_table7_render(benchmark, artifact):
    text = benchmark.pedantic(table7, rounds=1, iterations=1)
    artifact("table7", text)
    assert "6/400/40" in text  # Brainwave's single parameter set


def test_dse_never_loses_to_paper_choice(benchmark, artifact):
    chip = PlasticineConfig.rnn_serving()

    def sweep():
        rows = []
        for t in table6_tasks():
            best = tune(t, chip).best
            paper_point = evaluate(t, paper_params(t), chip)
            rows.append(
                [t.name,
                 f"{best.params.hu}/{best.params.ru}",
                 best.cycles_per_step,
                 f"{paper_params(t).hu}/{paper_params(t).ru}",
                 paper_point.cycles_per_step]
            )
            assert best.total_cycles <= paper_point.total_cycles, t.name
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    artifact(
        "table7_dse_vs_paper",
        format_table(
            ["task", "dse hu/ru", "dse cyc/step", "paper hu/ru", "paper cyc/step"],
            rows,
            title="Table 7: DSE optimum vs reconstructed paper parameters",
        ),
    )


def test_pass_axis_full_sweep_hoist_parity(benchmark, artifact):
    """Satellite of the shared-runner PR: the full Table 7 sweep over the
    pass-config axis builds one program per parameter point (the hoist),
    and every winner is bit-identical to an unhoisted, unmemoized
    re-evaluation.  The artifact reports which pass config wins per task.
    """
    chip = PlasticineConfig.rnn_serving()
    n_passes = len(ParameterSpace.with_pass_axis().pass_configs)

    def sweep():
        _MEMO.clear()
        results = {}
        for t in table6_tasks():
            res = tune(t, chip, pass_axis=True)
            # The hoist: one program per LoopParams, shared across the
            # whole pass-config axis (cold memo, so builds == params).
            assert res.stats.candidates == res.stats.program_builds * n_passes, t.name
            results[t.name] = (t, res)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, (t, res) in results.items():
        best = res.best
        fresh = evaluate(
            t, best.params, chip,
            pass_config=best.pass_config, memoize=False,
        )
        assert fresh == best, f"{name}: hoisted/memoized point drifted"
        default = tune(t, chip).best  # warm memo: no rebuilds
        rows.append(
            [name,
             f"{best.params.hu}/{best.params.ru}",
             best.pass_config.key,
             best.cycles_per_step,
             default.cycles_per_step]
        )
        assert best.total_cycles <= default.total_cycles, name
    artifact(
        "table7_pass_axis",
        format_table(
            ["task", "dse hu/ru", "winning passes", "cyc/step",
             "default-pipeline cyc/step"],
            rows,
            title="Table 7 over the optimization-pass axis: winning "
            "pass config per task",
        ),
    )


def test_dse_respects_resource_wall(benchmark):
    # LSTM cannot afford hu=5 at ru=8 (210 PCUs > 190): every DSE choice
    # must fit.
    res = benchmark.pedantic(tune, args=(task("lstm", 2048),), rounds=1, iterations=1)
    assert res.best.pcus_used <= PlasticineConfig.rnn_serving().usable_pcus
    infeasible = [p for p in res.points if not p.fits]
    assert infeasible, "the space should contain over-budget points"
    for point in res.feasible_points():
        assert point.total_cycles >= res.best.total_cycles
