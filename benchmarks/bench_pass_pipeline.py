"""Pass-pipeline compiler: parity with the monolith, overhead, payoff.

The Section 4 lowering now runs as a pass pipeline over a mapping IR
(``repro.mapping.passes``); the original single-function mapper is kept
as ``_map_rnn_monolith``, the golden reference.  This benchmark guards
the three contracts of that refactor:

* **Golden parity** — the default pipeline's ``MappedDesign`` must be
  bit-identical to the monolith's (stage coords, IIs, latencies, routed
  edges, the full resource report) on the Table 3 chip across the
  LSTM/GRU smoke matrix.  Checked unconditionally: it is the
  correctness contract, not a performance number.
* **Overhead ceiling** — mapping through the pipeline (IR verifier on,
  per-pass timing on) must cost at most 1.5x the monolith's wall-clock
  mapping time.  Passes are bookkeeping, not recomputation.
* **Optimization payoff** — ``double_buffer`` must show a measured
  steps-loop cycle reduction on the LSTM-1152 design (writeback
  overlapped with the next step's load), and ``fuse_gates`` must save
  PCUs without costing cycles.

Run under pytest (CI's benchmarks job) or standalone::

    python benchmarks/bench_pass_pipeline.py [--quick] [--parity]

``--parity`` runs only the golden-parity matrix (the CI pipeline-parity
smoke step).  Either way the metrics land in
``benchmarks/out/pass_pipeline.json`` (perf-smoke uploads it).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# Standalone bootstrap (python benchmarks/bench_pass_pipeline.py
# without PYTHONPATH=src): put the in-repo package on the path first.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.dse.search import build_task_program
from repro.harness.report import format_table
from repro.mapping.mapper import _map_rnn_monolith, map_rnn_program
from repro.mapping.passes import PassConfig, diff_designs
from repro.plasticine.chip import PlasticineConfig
from repro.plasticine.simulator import simulate_pipeline
from repro.rnn.lstm_loop import LoopParams
from repro.workloads.deepbench import RNNTask

OUT_JSON = Path(__file__).parent / "out" / "pass_pipeline.json"

#: The parity smoke matrix: kind, hidden, bits, (hu, ru).
PARITY_MATRIX = (
    ("lstm", 256, 8, (2, 2)),
    ("lstm", 1024, 8, (4, 8)),
    ("lstm", 1152, 16, (4, 8)),
    ("gru", 512, 8, (4, 4)),
    ("gru", 1536, 32, (2, 4)),
)

#: Pipeline mapping time / monolith mapping time must stay below this.
OVERHEAD_CEILING = 1.5

#: The Table 6 LSTM-1152 point used for the optimization payoff.
PAYOFF_TASK = RNNTask("lstm", 1152, 25)
PAYOFF_PARAMS = LoopParams(hu=4, ru=8, rv=64)


def _program(kind: str, hidden: int, hu: int, ru: int, timesteps: int = 4):
    return build_task_program(
        RNNTask(kind, hidden, timesteps), LoopParams(hu=hu, ru=ru, rv=64)
    )


def _parity() -> dict:
    """Diff the default pipeline against the monolith on the Table 3 chip."""
    chip = PlasticineConfig.rnn_serving()
    cases = []
    for kind, hidden, bits, (hu, ru) in PARITY_MATRIX:
        prog = _program(kind, hidden, hu, ru)
        legacy = _map_rnn_monolith(prog, chip, bits=bits)
        piped = map_rnn_program(prog, chip, bits=bits)
        diffs = diff_designs(legacy, piped)
        cases.append(
            {
                "case": f"{kind}-{hidden} {bits}b hu={hu} ru={ru}",
                "identical": not diffs,
                "diffs": diffs[:10],
                "cycles": simulate_pipeline(piped.graph).total_cycles,
            }
        )
    return {"chip": chip.name, "cases": cases,
            "identical": all(c["identical"] for c in cases)}


def _overhead(reps: int) -> dict:
    """Wall-clock mapping time: monolith vs the default pipeline."""
    prog = build_task_program(PAYOFF_TASK, PAYOFF_PARAMS)
    prog.trace()  # warm the shared trace cache out of the timed region
    timed = {}
    for name, fn in (
        ("monolith", lambda: _map_rnn_monolith(prog)),
        ("pipeline", lambda: map_rnn_program(prog)),
        ("pipeline_no_verify", lambda: map_rnn_program(prog, verify=False)),
    ):
        fn()  # warm-up
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        timed[name] = (time.perf_counter() - t0) / reps
    design = map_rnn_program(prog)
    return {
        "reps": reps,
        "mapping_ms": {k: v * 1e3 for k, v in timed.items()},
        "ratio": timed["pipeline"] / timed["monolith"],
        "ratio_no_verify": timed["pipeline_no_verify"] / timed["monolith"],
        "pass_timings_ms": {
            t.name: t.seconds * 1e3 for t in design.pass_timings
        },
    }


def _payoff() -> dict:
    """What the new optimization passes buy on LSTM-1152."""
    prog = build_task_program(PAYOFF_TASK, PAYOFF_PARAMS)
    points = {}
    for key, config in (
        ("default", PassConfig()),
        ("fuse_gates", PassConfig(fuse_gates=True)),
        ("double_buffer", PassConfig(double_buffer=True)),
        ("both", PassConfig(fuse_gates=True, double_buffer=True)),
    ):
        design = map_rnn_program(prog, pass_config=config)
        sim = simulate_pipeline(design.graph)
        points[key] = {
            "total_cycles": sim.total_cycles,
            "cycles_per_step": sim.cycles_per_step,
            "step_overhead": design.graph.step_overhead,
            "pcus_used": design.resources.pcus_used,
            "pmus_used": design.resources.pmus_used,
        }
    base = points["default"]
    return {
        "task": PAYOFF_TASK.name,
        "params": {"hu": PAYOFF_PARAMS.hu, "ru": PAYOFF_PARAMS.ru,
                   "rv": PAYOFF_PARAMS.rv},
        "points": points,
        "double_buffer_cycle_cut": (
            base["total_cycles"] - points["double_buffer"]["total_cycles"]
        ),
        "fuse_gates_pcu_cut": (
            base["pcus_used"] - points["fuse_gates"]["pcus_used"]
        ),
    }


def run(quick: bool = False) -> dict:
    return {
        "quick": quick,
        "parity": _parity(),
        "overhead": _overhead(10 if quick else 40),
        "payoff": _payoff(),
        "ceilings": {"overhead": OVERHEAD_CEILING},
    }


def check(metrics: dict) -> list[str]:
    """The regressions this benchmark exists to catch."""
    failures = []
    for case in metrics["parity"]["cases"]:
        if not case["identical"]:
            failures.append(
                f"pipeline diverged from the monolith on {case['case']}: "
                + "; ".join(case["diffs"][:3])
            )
    ratio = metrics["overhead"]["ratio"]
    if ratio > OVERHEAD_CEILING:
        failures.append(
            f"pipeline mapping costs {ratio:.2f}x the monolith "
            f"(ceiling {OVERHEAD_CEILING:.1f}x): passes are recomputing, "
            f"not bookkeeping"
        )
    payoff = metrics["payoff"]
    if payoff["double_buffer_cycle_cut"] <= 0:
        failures.append(
            "double_buffer shows no steps-loop cycle reduction on "
            f"{payoff['task']}"
        )
    points = payoff["points"]
    if points["double_buffer"]["pmus_used"] <= points["default"]["pmus_used"]:
        failures.append("double_buffer claims no extra PMUs — it did nothing")
    if payoff["fuse_gates_pcu_cut"] <= 0:
        failures.append(f"fuse_gates saved no PCUs on {payoff['task']}")
    if points["fuse_gates"]["total_cycles"] > points["default"]["total_cycles"]:
        failures.append("fuse_gates made the design slower")
    if points["both"]["total_cycles"] > min(
        points["fuse_gates"]["total_cycles"],
        points["double_buffer"]["total_cycles"],
    ):
        failures.append("combined pass config is slower than its parts")
    return failures


def _render(metrics: dict) -> str:
    payoff = metrics["payoff"]
    rows = [
        [
            key,
            f"{p['total_cycles']:,}",
            p["step_overhead"],
            p["pcus_used"],
            p["pmus_used"],
        ]
        for key, p in payoff["points"].items()
    ]
    overhead = metrics["overhead"]
    parity = "EXACT" if metrics["parity"]["identical"] else "BROKEN"
    title = (
        f"Pass pipeline: parity {parity} on {len(metrics['parity']['cases'])} "
        f"cases, overhead {overhead['ratio']:.2f}x monolith "
        f"(ceiling {OVERHEAD_CEILING:.1f}x) — {payoff['task']} "
        f"hu={payoff['params']['hu']} ru={payoff['params']['ru']}"
    )
    return format_table(
        ["pass config", "total cycles", "step overhead", "PCUs", "PMUs"],
        rows,
        title=title,
    )


def _write_json(metrics: dict) -> None:
    OUT_JSON.parent.mkdir(exist_ok=True)
    OUT_JSON.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")


def test_pass_pipeline(artifact):
    metrics = run(quick=False)
    _write_json(metrics)
    artifact("pass_pipeline", _render(metrics))
    failures = check(metrics)
    assert not failures, "; ".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer timing reps (the CI perf-smoke configuration)",
    )
    parser.add_argument(
        "--parity",
        action="store_true",
        help="run only the golden-parity matrix (the CI parity smoke)",
    )
    args = parser.parse_args(argv)
    if args.parity:
        parity = _parity()
        for case in parity["cases"]:
            status = "ok" if case["identical"] else "DIVERGED"
            print(f"{case['case']:<32} {status}")
            for diff in case["diffs"]:
                print(f"    {diff}", file=sys.stderr)
        return 0 if parity["identical"] else 1
    metrics = run(quick=args.quick)
    _write_json(metrics)
    print(_render(metrics))
    print(f"[json: {OUT_JSON}]")
    failures = check(metrics)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
