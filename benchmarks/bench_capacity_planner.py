"""Capacity-planner DSE: heterogeneous fleets must earn their keep.

PR 9 made :class:`~repro.serving.fleet.Fleet` heterogeneous (a
``"name[:count],..."`` platform mix behind cost-aware dispatch) and
added :func:`~repro.dse.capacity.plan_capacity`, the fleet-level
analogue of the Table 7 loop-knob DSE: search fleet size × platform mix
× policy for the cheapest fleet holding a P99 SLO on a diurnal
workload, costed by the Table 4/5 TDP and device-price data in
:mod:`repro.platforms`.  This benchmark guards the two contracts that
make the feature trustworthy:

* **Homogeneous parity** — a mix spec naming one platform
  (``Fleet("gpu:2")``) must be the *same fleet* as the classic
  ``Fleet("gpu", replicas=2)``: identical dispatcher, identical
  response timelines, bit for bit.  Heterogeneity is purely additive.
* **Mixed fleets win somewhere** — on a gru-2816 diurnal workload
  peaking above twice one Plasticine's capacity, the planner's cheapest
  SLO-meeting fleet must be a genuine mix (one Brainwave covering the
  overflow beats a second replica of either platform alone on $/1M
  requests).  If every mixed candidate loses to a homogeneous fleet,
  the cost-aware dispatcher or the TCO accounting has regressed.

The full cost/latency frontier lands in
``benchmarks/out/capacity_planner.json`` (uploaded by the perf-smoke CI
job), so a PR that shifts the frontier shows up in the artifact diff.

Run under pytest (CI's benchmarks job) or standalone::

    python benchmarks/bench_capacity_planner.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# Standalone bootstrap (python benchmarks/bench_capacity_planner.py
# without PYTHONPATH=src): put the in-repo package on the path first.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.dse import FleetSpace, plan_capacity
from repro.harness.report import format_table
from repro.serving import Fleet, poisson_arrivals
from repro.workloads.deepbench import task

OUT_JSON = Path(__file__).parent / "out" / "capacity_planner.json"

#: The planner workload: gru-2816 at a diurnal peak of 12k req/s —
#: above 2x one Plasticine replica's ~5.7k req/s capacity, so the
#: cheapest feasible fleet needs either a third tier or a second
#: expensive replica.  The SLO matches the paper's 5 ms target.
PLAN_TASK = task("gru", 2816, 25)
PLAN_SLO_MS = 5.0
PLAN_PEAK_RATE = 12_000.0
PLAN_SPACE = FleetSpace(
    platforms=("plasticine", "brainwave", "gpu"), max_replicas=3
)

#: Homogeneous-parity stream (cheap analytical platform).
PARITY_TASK = task("lstm", 512, 25)
PARITY_SEED = 2026


def _parity(n: int) -> dict:
    """Mix-spec fleet vs classic replicas kwarg: the same fleet, exactly."""
    arrivals = poisson_arrivals(
        PARITY_TASK, rate_per_s=2_000.0, n_requests=n, seed=PARITY_SEED
    )
    via_mix = Fleet("gpu:2", policy="least-loaded").serve_stream(
        arrivals, slo_ms=PLAN_SLO_MS
    )
    classic = Fleet("gpu", replicas=2, policy="least-loaded").serve_stream(
        arrivals, slo_ms=PLAN_SLO_MS
    )
    return {
        "n_requests": n,
        "identical": bool(
            via_mix.assignments == classic.assignments
            and via_mix.responses == classic.responses
            and via_mix.p99_ms == classic.p99_ms
            and via_mix.max_rate_per_s == classic.max_rate_per_s
        ),
        "p99_ms": classic.p99_ms,
    }


def _plan(n: int) -> dict:
    """Run the capacity planner and record the whole frontier."""
    t0 = time.perf_counter()
    plan = plan_capacity(
        PLAN_TASK,
        slo_ms=PLAN_SLO_MS,
        peak_rate_per_s=PLAN_PEAK_RATE,
        n_requests=n,
        space=PLAN_SPACE,
    )
    elapsed = time.perf_counter() - t0
    homogeneous = [p for p in plan.feasible_points() if not p.is_mixed]
    return {
        "elapsed_s": elapsed,
        "candidates_per_s": len(plan.points) / elapsed,
        "best_homogeneous_cost": (
            min(p.cost_usd_per_1m for p in homogeneous)
            if homogeneous
            else None
        ),
        "plan": plan.to_json(),
    }


def run(quick: bool = False) -> dict:
    return {
        "quick": quick,
        "workload": (
            f"{PLAN_TASK.name} diurnal peak {PLAN_PEAK_RATE:.0f}/s "
            f"slo {PLAN_SLO_MS}ms"
        ),
        "parity": _parity(1_000 if quick else 5_000),
        "planner": _plan(4_000 if quick else 8_000),
    }


def check(metrics: dict) -> list[str]:
    """The regressions this benchmark exists to catch."""
    failures = []
    if not metrics["parity"]["identical"]:
        failures.append(
            "a single-platform mix spec no longer matches the classic "
            "homogeneous fleet bit for bit"
        )
    plan = metrics["planner"]["plan"]
    best = plan["best"]
    if best is None:
        failures.append("no fleet in the space held the SLO")
        return failures
    if not best["meets_slo"]:
        failures.append("the planner's best fleet misses its own SLO")
    if len(set(best["mix"].split(","))) < 2:
        failures.append(
            f"the cheapest SLO-meeting fleet is homogeneous ({best['mix']}): "
            f"mixed fleets no longer pay off on the overflow workload"
        )
    homogeneous_cost = metrics["planner"]["best_homogeneous_cost"]
    if (
        homogeneous_cost is not None
        and best["cost_usd_per_1m"] >= homogeneous_cost
    ):
        failures.append(
            f"best mixed fleet (${best['cost_usd_per_1m']:.4f}/1M) does not "
            f"beat the best homogeneous fleet (${homogeneous_cost:.4f}/1M)"
        )
    if best["joules_per_request"] <= 0 or best["fleet_watt_hours"] <= 0:
        failures.append("energy columns are empty on the best fleet")
    if not plan["frontier"]:
        failures.append("the cost/latency frontier is empty")
    return failures


def _render(metrics: dict) -> str:
    plan = metrics["planner"]["plan"]
    rows = [
        [
            p["mix"],
            p["replicas"],
            f"{p['p99_ms']:.3f}",
            "yes" if p["meets_slo"] else "NO",
            f"{p['joules_per_request']:.4f}",
            f"{p['cost_usd_per_1m']:.4f}",
        ]
        for p in plan["frontier"]
    ]
    parity = "EXACT" if metrics["parity"]["identical"] else "BROKEN"
    best = plan["best"]
    title = (
        f"Capacity planner: {metrics['workload']} — homogeneous parity "
        f"{parity}, best fleet {best['mix']} at "
        f"${best['cost_usd_per_1m']:.4f}/1M "
        f"({plan['n_candidates']} candidates in "
        f"{metrics['planner']['elapsed_s']:.1f}s)"
    )
    return format_table(
        ["fleet", "replicas", "P99 ms", f"P99<{PLAN_SLO_MS:g}ms", "J/req",
         "$/1M req"],
        rows,
        title=title,
    )


def _write_json(metrics: dict) -> None:
    OUT_JSON.parent.mkdir(exist_ok=True)
    OUT_JSON.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")


def test_capacity_planner(artifact):
    metrics = run(quick=False)
    _write_json(metrics)
    artifact("capacity_planner", _render(metrics))
    failures = check(metrics)
    assert not failures, "; ".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller request counts (the CI perf-smoke configuration)",
    )
    args = parser.parse_args(argv)
    metrics = run(quick=args.quick)
    _write_json(metrics)
    print(_render(metrics))
    print(f"[json: {OUT_JSON}]")
    failures = check(metrics)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
