"""Figure 6: PCU low-precision map-reduce micro-architecture.

Benchmarks the PCU timing model across the four (fused x folded)
variants and pins the paper's law: fused + folded performs the whole
64-element 8-bit map-reduce in 4 stages, 2 + log2(16) + 1 cycles.
"""

import math

from repro.harness.figures import figure6_pcu_timing
from repro.plasticine.pcu import PCUConfig


def test_figure6_variants(benchmark, artifact):
    text = benchmark(figure6_pcu_timing)
    artifact("figure6", text)


def test_headline_law(benchmark):
    pcu = PCUConfig(lanes=16, stages=4, fused_low_precision=True, folded_reduction=True)

    def timing():
        return pcu.map_reduce_timing(8)

    t = benchmark(timing)
    assert t.stages_used == 4
    assert t.depth_cycles == 2 + int(math.log2(16)) + 1
    assert t.elements_per_cycle == 64


def test_lane_scaling(benchmark, artifact):
    from repro.harness.report import format_table

    def sweep():
        rows = []
        for lanes in (4, 8, 16, 32):
            pcu = PCUConfig(lanes=lanes, stages=4)
            t = pcu.map_reduce_timing(8)
            rows.append([lanes, t.elements_per_cycle, t.depth_cycles, t.stages_used])
        return rows

    rows = benchmark(sweep)
    artifact(
        "figure6_lanes",
        format_table(
            ["lanes", "elems/cyc", "latency", "stages"],
            rows,
            title="Figure 6: map-reduce scaling with SIMD width",
        ),
    )
    for lanes, elems, depth, stages in rows:
        assert elems == 4 * lanes
        assert depth == 2 + int(math.log2(lanes)) + 1
        assert stages == 4


def test_folding_fu_utilization_gain(benchmark):
    # Figure 6(c)'s motivation: the unfolded tree wastes FU slots.
    def gain():
        folded = PCUConfig(folded_reduction=True).reduction_fu_utilization()
        unfolded = PCUConfig(stages=8, folded_reduction=False).reduction_fu_utilization()
        return folded / unfolded

    assert benchmark(gain) == 5.0  # 1.0 vs 0.2 at 16 lanes


def test_precision_throughput_ladder(benchmark):
    # 8-bit packing quadruples, 16-bit doubles the per-PCU dot width.
    pcu = PCUConfig()

    def widths():
        return [pcu.values_per_cycle(b) for b in (32, 16, 8)]

    w32, w16, w8 = benchmark(widths)
    assert (w32, w16, w8) == (16, 32, 64)
