"""The latency/throughput frontier the paper argues about (Section 1).

The paper's serving claim is that a spatial accelerator meets a
stringent latency window at **batch 1**, where throughput-oriented
designs batch requests to stay utilized.  With the dynamic batching
subsystem we can chart that frontier instead of asserting it: sweep the
batch cap, measure drain throughput of a backlog under the ``size-cap``
policy, and check two things on Plasticine —

* throughput grows monotonically with the batch cap (the pipeline-fill
  setup amortizes across the batch), and
* the batch-1 point still meets the paper's 5 ms window at P99 under an
  open Poisson load near the sustainable rate, so the latency claim
  survives alongside the batching machinery.

The rendered frontier (plasticine vs the batch-hungry GPU baseline)
lands in ``benchmarks/out/batching_frontier.txt``.
"""

from repro.harness.report import format_table
from repro.serving import ServingEngine, poisson_arrivals, uniform_arrivals
from repro.workloads.deepbench import task

T = task("lstm", 512, 25)
BATCH_CAPS = (1, 2, 4, 8, 16, 32)
SLO_MS = 5.0


def _drain_throughput(engine: ServingEngine, cap: int, n_requests: int) -> tuple:
    """Serve an instantaneous backlog; report drain rate and mean batch."""
    burst = uniform_arrivals(T, rate_per_s=1e9, n_requests=n_requests)
    report = engine.serve_stream(
        burst, slo_ms=None, batcher="size-cap", max_batch=cap
    )
    return report.throughput_rps, report.mean_batch_size


def test_batching_frontier(artifact):
    engines = {name: ServingEngine(name) for name in ("plasticine", "gpu")}
    for engine in engines.values():
        engine.serve(T)  # compile outside the sweep

    rows = []
    measured = {name: [] for name in engines}
    for cap in BATCH_CAPS:
        row = [cap]
        for name, engine in engines.items():
            tput, mean_batch = _drain_throughput(engine, cap, n_requests=256)
            model_tput = cap / engine.batch_latency_s(T, cap)
            measured[name].append(tput)
            row += [round(tput), round(model_tput), round(mean_batch, 2)]
        rows.append(row)

    # The paper's batch-1 latency claim, with the batching machinery in
    # place: an open Poisson stream near 80% of the batch-1 sustainable
    # rate must keep P99 inside the 5 ms window on Plasticine.
    plasticine = engines["plasticine"]
    batch1_rate = 1.0 / plasticine.serve(T).result.latency_s
    open_load = poisson_arrivals(
        T, rate_per_s=0.8 * batch1_rate, n_requests=2000, seed=7
    )
    batch1 = plasticine.serve_stream(open_load, slo_ms=SLO_MS, batcher="none")

    artifact(
        "batching_frontier",
        format_table(
            ["cap", "plasticine req/s", "plasticine model req/s",
             "plasticine mean batch", "gpu req/s", "gpu model req/s",
             "gpu mean batch"],
            [[r[0], r[1], r[2], r[3], r[4], r[5], r[6]] for r in rows],
            title=(
                f"Batching frontier, {T.name} backlog drain "
                f"(size-cap policy; batch-1 plasticine P99 "
                f"{batch1.p99_ms:.3f} ms at 80% load vs {SLO_MS:g} ms SLO)"
            ),
        ),
    )

    for name, series in measured.items():
        for lo, hi in zip(series, series[1:]):
            assert hi >= lo, (
                f"{name} throughput fell from {lo:.0f} to {hi:.0f} req/s "
                f"as the batch cap grew"
            )
    # Larger caps must actually buy throughput on both platforms.
    assert measured["plasticine"][-1] > measured["plasticine"][0]
    assert measured["gpu"][-1] > 2 * measured["gpu"][0]
    # The paper's headline: batch-1 latency stays inside the window.
    assert batch1.mean_batch_size == 1.0
    assert batch1.p99_ms <= SLO_MS, (
        f"batch-1 P99 {batch1.p99_ms:.3f} ms blew the {SLO_MS:g} ms window"
    )
