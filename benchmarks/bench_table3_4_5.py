"""Benchmarks regenerating the configuration tables (Tables 3, 4, 5).

These are cheap lookups; the benchmark times the full render path and the
assertions pin the published configuration values.
"""

from repro.harness import table3, table4, table5
from repro.plasticine import PlasticineConfig
from repro.plasticine.area_power import AreaPowerModel


def test_table3_plasticine_config(benchmark, artifact):
    text = benchmark(table3)
    artifact("table3", text)
    chip = PlasticineConfig.rnn_serving()
    assert chip.n_pcu == 192 and chip.n_pmu == 384
    assert chip.pcu.lanes == 16 and chip.pcu.stages == 4


def test_table4_hardware_specs(benchmark, artifact):
    text = benchmark(table4)
    artifact("table4", text)
    model = AreaPowerModel()
    chip = PlasticineConfig.rnn_serving()
    assert abs(model.chip_area_mm2(chip) - 494.37) < 2.5
    assert abs(chip.peak_tflops(8) - 49) < 0.5
    assert abs(chip.onchip_mb - 31.5) < 0.05


def test_table5_application_configs(benchmark, artifact):
    text = benchmark(table5)
    artifact("table5", text)
    assert "Spatial" in text and "Brainwave" in text
