"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but the quantified versions of its design
arguments: what each micro-architectural choice (precision packing,
cross-kernel fusion, parameter tuning) buys on the headline workload.
"""

import numpy as np
import pytest

from repro.api import serve_on_plasticine
from repro.harness.report import format_table
from repro.rnn.lstm_loop import LoopParams
from repro.workloads.deepbench import task


def test_precision_packing_ablation(benchmark, artifact):
    # 8-bit packing quadruples per-PCU dot width; serving at 32-bit needs
    # 4x the PCUs for the same rv, or 4x the initiation interval.
    t = task("lstm", 1024)

    def measure():
        rows = []
        for bits, rv in ((8, 64), (16, 32), (32, 16)):
            res = serve_on_plasticine(
                t, params=LoopParams(hu=4, ru=8, rv=rv), bits=bits
            )
            rows.append([f"{bits}-bit (rv={rv})", res.latency_ms, res.effective_tflops])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    artifact(
        "ablation_precision",
        format_table(
            ["precision", "latency ms", "effective TFLOPS"],
            rows,
            title="Ablation: weight precision vs serving latency (LSTM 1024)",
        ),
    )
    lat8, lat16, lat32 = (r[1] for r in rows)
    assert lat8 < lat16 < lat32
    # Halving the packing roughly doubles the dot-product II.
    assert lat16 / lat8 == pytest.approx(2.0, rel=0.35)


def test_parameter_sensitivity_ablation(benchmark, artifact):
    # Mistuning the knobs costs real latency: the DSE's job.
    t = task("lstm", 2048)

    def measure():
        rows = []
        for hu, ru in ((1, 1), (1, 8), (4, 4), (4, 8)):
            res = serve_on_plasticine(t, params=LoopParams(hu=hu, ru=ru, rv=64))
            rows.append([f"hu={hu} ru={ru}", res.latency_ms])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    artifact(
        "ablation_parameters",
        format_table(
            ["parameters", "latency ms"],
            rows,
            title="Ablation: loop-knob sensitivity (LSTM 2048)",
        ),
    )
    latencies = [r[1] for r in rows]
    assert latencies == sorted(latencies, reverse=True)
    assert latencies[0] / latencies[-1] > 20  # untuned is >20x slower


def test_sequential_timestep_cost(benchmark):
    # The h_t feedback forbids cross-step pipelining: per-step cost is
    # constant, total scales linearly in T.
    def scale():
        r5 = serve_on_plasticine(task("lstm", 1024, 5))
        r25 = serve_on_plasticine(task("lstm", 1024, 25))
        return r25.latency_s / r5.latency_s

    assert benchmark.pedantic(scale, rounds=1, iterations=1) == pytest.approx(5.0, rel=0.01)


def test_functional_fidelity_under_serving_precision(benchmark):
    # End-to-end: the mixed-precision datapath still computes an LSTM
    # whose outputs track the fp32 reference.
    from repro.precision import FP8, FP16
    from repro.rnn import LSTMWeights, RNNShape, build_lstm_program, lstm_sequence
    from repro.spatial import PrecisionPolicy

    shape = RNNShape("lstm", 32, 32)
    w = LSTMWeights.random(shape, rng=11)
    xs = np.random.default_rng(12).uniform(-1, 1, (8, 32))

    def run():
        prog = build_lstm_program(
            w, xs, LoopParams(hu=4, ru=2, rv=16), weight_dtype=FP8, state_dtype=FP16
        )
        ex = prog.run(policy=PrecisionPolicy.plasticine_mixed())
        return ex.state["y_seq"]

    quantized = benchmark.pedantic(run, rounds=2, iterations=1)
    reference, _, _ = lstm_sequence(w, xs)
    corr = np.corrcoef(quantized.ravel(), reference.ravel())[0, 1]
    assert corr > 0.97
