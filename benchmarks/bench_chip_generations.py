"""Ablation: the original ISCA'17 Plasticine vs the RNN-serving variant.

Quantifies what Section 4's modifications buy end-to-end.  The original
chip (64 PCU / 64 PMU checkerboard, 6-stage PCUs, no low-precision
opcodes, no folded tree) can only serve at 32-bit; the variant packs four
8-bit values per lane, folds the reduction into 4-stage PCUs, and doubles
memory units.  The same loop-based LSTM is DSE-tuned on each chip.
"""

import pytest

from repro.dse.search import evaluate
from repro.dse.space import ParameterSpace
from repro.dse.tuner import tune
from repro.harness.report import format_table
from repro.plasticine import PlasticineConfig
from repro.rnn.lstm_loop import LoopParams
from repro.workloads.deepbench import task


def test_generation_gap(benchmark, artifact):
    t = task("lstm", 256)

    def measure():
        original = PlasticineConfig.isca2017()
        variant = PlasticineConfig.rnn_serving()
        best_orig = tune(t, original, ParameterSpace(max_hu=4, ru_choices=(1, 2, 4)),
                         bits=32).best
        best_var = tune(t, variant, bits=8).best
        return best_orig, best_var

    best_orig, best_var = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = best_orig.total_cycles / best_var.total_cycles
    artifact(
        "ablation_chip_generations",
        format_table(
            ["chip", "precision", "hu/ru", "cycles/step", "latency ms"],
            [
                ["isca2017 (original)", "32-bit",
                 f"{best_orig.params.hu}/{best_orig.params.ru}",
                 best_orig.cycles_per_step, best_orig.total_cycles / 1e6],
                ["rnn variant (Table 3)", "8-bit",
                 f"{best_var.params.hu}/{best_var.params.ru}",
                 best_var.cycles_per_step, best_var.total_cycles / 1e6],
                ["speedup", "", "", "", round(speedup, 1)],
            ],
            title="Ablation: Section 4 modifications, end to end (LSTM 256)",
        ),
    )
    # The modifications are worth several-fold: 4x packing alone, plus
    # more units; the original chip is also far smaller (64 vs 192 PCUs).
    assert speedup > 4.0


def test_original_chip_bandwidth_wall(benchmark):
    # Section 4.2 on the actual original chip: the 1:1 checkerboard runs
    # out of PMUs (each dot PCU wants two) before it runs out of PCUs.
    chip = PlasticineConfig.isca2017()
    t = task("lstm", 256)

    def wall():
        return evaluate(t, LoopParams(hu=2, ru=4, rv=16), chip, bits=32)

    point = benchmark(wall)
    assert not point.fits
    assert point.pcus_used <= chip.usable_pcus  # compute fits...
    assert point.pmus_used > chip.n_pmu  # ...memory bandwidth does not


def test_original_chip_cannot_serve_8bit(benchmark):
    # Without the fused opcodes + folded tree, an 8-bit map-reduce does
    # not fit the 6-stage PCU at all.
    from repro.errors import ConfigError

    chip = PlasticineConfig.isca2017()

    def attempt():
        try:
            chip.pcu.map_reduce_timing(8)
        except ConfigError:
            return True
        return False

    assert benchmark(attempt)
