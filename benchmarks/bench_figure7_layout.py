"""Figure 7 / Section 4.2: sizing Plasticine for RNN serving.

Regenerates the layout diagram and benchmarks the ablation behind it:
the 2:1 PMU:PCU variant vs the original 1:1 checkerboard on the
compute-to-memory-bandwidth ratio that RNN MVMs need.
"""

from repro.harness.figures import figure7_layouts
from repro.plasticine import PlasticineConfig
from repro.plasticine.network import GridLayout


def test_figure7_render(benchmark, artifact):
    text = benchmark(figure7_layouts)
    artifact("figure7", text)


def test_variant_ratio_on_grid(benchmark):
    layout = benchmark(GridLayout.rnn_variant, 24, 24)
    assert layout.n_pcu == 192
    assert layout.n_pmu == 384


def test_compute_memory_ratio_ablation(benchmark, artifact):
    # Section 4.2: original 6:1 ops-per-read starves RNN MVM (needs 2:1);
    # the variant hits 2:1 exactly.
    from repro.harness.report import format_table

    def measure():
        original = PlasticineConfig.isca2017()
        variant = PlasticineConfig.rnn_serving()
        return [
            ["original checkerboard", original.compute_to_memory_read_ratio()],
            ["rnn variant", variant.compute_to_memory_read_ratio()],
        ]

    rows = benchmark(measure)
    artifact(
        "figure7_ratio",
        format_table(
            ["layout", "FU ops per scratchpad read"],
            rows,
            title="Section 4.2: compute-to-memory ratio",
        ),
    )
    assert rows[0][1] == 6.0
    assert rows[1][1] == 2.0


def test_bandwidth_pairing(benchmark):
    # Each dot PCU needs its weight PMU plus its [x,h] copy PMU — exactly
    # the 2:1 provisioning.
    from repro.plasticine.pcu import PCUConfig
    from repro.plasticine.pmu import PMUConfig

    def ratio():
        pcu_demand_bytes = PCUConfig().values_per_cycle(8) * 2  # w + xh
        pmu_supply_bytes = PMUConfig().bytes_per_cycle
        return pcu_demand_bytes / pmu_supply_bytes

    assert benchmark(ratio) == 2.0
