"""Length-aware batching on a heavy-tailed (zipf) sequence-length mix.

Fixed-length evaluation (the paper's Table 6 scenario) hides the
dominant cost of batched RNN serving in practice: **padding**.  When
request lengths vary, a padded batch executes every member at the
longest member's length, and on a heavy-tailed length distribution a
single long straggler multiplies a whole batch's cost.  This benchmark
drains the same zipf-length backlog through the two length-aware
policies and checks the ordering the serving literature predicts:

* ``bucket`` (coalesce only within a geometric length band) beats
  ``pad`` (coalesce the whole family, pad to the batch max) on
  **padding waste** — strictly — and matches or beats it on **drain
  throughput** and **SLO attainment**;
* the batch-1 spatial path (Plasticine, ``batcher="none"``) shows
  **zero** padding waste on the same workload: a pipeline that is
  efficient at batch 1 never pays for padding, which sharpens the
  paper's Section 1 argument against throughput-oriented batching;
* the stacked and seq2seq zoo tasks serve end to end on every
  registered platform with cost scaling ``layers * (T_enc + T_dec)``.

Run under pytest (CI's benchmarks job) or standalone::

    python benchmarks/bench_length_aware_batching.py [--quick]

Either way the metrics land in ``benchmarks/out/length_aware_batching.json``
(the perf-smoke CI job uploads it as an artifact and fails the build if
the pad/bucket ordering inverts).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Standalone bootstrap (python benchmarks/bench_length_aware_batching.py
# without PYTHONPATH=src): put the in-repo package on the path first.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.harness.report import format_table
from repro.serving import (
    ServingEngine,
    ZipfLength,
    available_platforms,
    get_batcher,
    uniform_arrivals,
)
from repro.workloads.deepbench import task
from repro.workloads.zoo import zoo_task

OUT_JSON = Path(__file__).parent / "out" / "length_aware_batching.json"

#: The length mix: heavy-tailed zipf — most requests short, a fat tail
#: of long ones.  The worst case for naive padding.
BASE_TASK = task("gru", 512, 25)
LENGTHS = ZipfLength(10, 300, alpha=1.6)
MAX_BATCH = 16
SLO_MS = 400.0
SEED = 3


def _drain(engine: ServingEngine, n: int, batcher, **opts) -> dict:
    """Drain an instantaneous zipf-length backlog; report the outcome."""
    burst = uniform_arrivals(
        BASE_TASK, rate_per_s=1e6, n_requests=n, seed=SEED, lengths=LENGTHS
    )
    report = engine.serve_stream(burst, slo_ms=SLO_MS, batcher=batcher, **opts)
    return {
        "batcher": report.batcher,
        "throughput_rps": report.throughput_rps,
        "padding_waste_frac": report.padding_waste_frac,
        "mean_batch_size": report.mean_batch_size,
        "slo_attainment": report.slo_attainment,
        "p99_ms": report.p99_ms,
    }


def run(quick: bool = False) -> dict:
    """Run every scenario and return the metrics dict."""
    n = 200 if quick else 600
    # Brainwave is the paper's throughput-oriented batched baseline —
    # exactly the design whose utilization strategy pays for padding.
    brainwave = ServingEngine("brainwave")
    pad = _drain(brainwave, n, "pad", max_batch=MAX_BATCH)
    bucket = _drain(
        brainwave,
        n,
        lambda: get_batcher("bucket", max_batch=MAX_BATCH, band_base=2.0),
    )

    # The spatial batch-1 path on the same length mix: no batching, no
    # padding, still inside the paper's latency regime.
    plasticine = _drain(ServingEngine("plasticine"), 60 if quick else 200, "none")

    # The zoo tasks end to end on every platform (cost must scale with
    # layers and encoder+decoder steps on each of them).
    zoo = {}
    for name in ("ds2-gru-3x1536", "gnmt-lstm-2x1024"):
        t = zoo_task(name)
        zoo[name] = {
            platform: ServingEngine(platform).serve(t).result.latency_ms
            for platform in available_platforms()
        }

    return {
        "quick": quick,
        "n_requests": n,
        "workload": f"{BASE_TASK.name} x zipf[{LENGTHS.lo},{LENGTHS.hi}]"
        f"@a={LENGTHS.alpha}",
        "max_batch": MAX_BATCH,
        "brainwave_pad": pad,
        "brainwave_bucket": bucket,
        "plasticine_batch1": plasticine,
        "zoo_latency_ms": zoo,
    }


def check(metrics: dict) -> list[str]:
    """The orderings this benchmark exists to guard."""
    pad, bucket = metrics["brainwave_pad"], metrics["brainwave_bucket"]
    spatial = metrics["plasticine_batch1"]
    failures = []
    if not bucket["padding_waste_frac"] < pad["padding_waste_frac"]:
        failures.append(
            f"bucket waste {bucket['padding_waste_frac']:.3f} not strictly "
            f"below pad waste {pad['padding_waste_frac']:.3f}"
        )
    if not bucket["throughput_rps"] >= pad["throughput_rps"]:
        failures.append(
            f"bucket throughput {bucket['throughput_rps']:.0f} req/s fell "
            f"below pad {pad['throughput_rps']:.0f} req/s"
        )
    if not bucket["slo_attainment"] >= pad["slo_attainment"]:
        failures.append(
            f"bucket SLO attainment {bucket['slo_attainment']:.3f} below "
            f"pad {pad['slo_attainment']:.3f}"
        )
    if spatial["padding_waste_frac"] != 0.0:
        failures.append(
            f"batch-1 spatial path shows padding waste "
            f"{spatial['padding_waste_frac']:.3f} (must be exactly 0)"
        )
    if spatial["mean_batch_size"] != 1.0:
        failures.append("batch-1 spatial path coalesced requests")
    for name, per_platform in metrics["zoo_latency_ms"].items():
        for platform, latency_ms in per_platform.items():
            if not latency_ms > 0:
                failures.append(f"{name} on {platform}: non-positive latency")
    return failures


def _render(metrics: dict) -> str:
    rows = [
        [
            key,
            round(m["throughput_rps"]),
            f"{100 * m['padding_waste_frac']:.1f}%",
            round(m["mean_batch_size"], 2),
            f"{100 * m['slo_attainment']:.1f}%",
            round(m["p99_ms"], 3),
        ]
        for key, m in (
            ("brainwave pad", metrics["brainwave_pad"]),
            ("brainwave bucket", metrics["brainwave_bucket"]),
            ("plasticine batch-1", metrics["plasticine_batch1"]),
        )
    ]
    return format_table(
        ["policy", "drain req/s", "pad waste", "mean batch", "SLO attained",
         "P99 ms"],
        rows,
        title=f"Length-aware batching: {metrics['workload']}, "
        f"{metrics['n_requests']} requests, cap {metrics['max_batch']}",
    )


def _write_json(metrics: dict) -> None:
    OUT_JSON.parent.mkdir(exist_ok=True)
    OUT_JSON.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")


def test_length_aware_batching(artifact):
    metrics = run(quick=False)
    _write_json(metrics)
    artifact("length_aware_batching", _render(metrics))
    failures = check(metrics)
    assert not failures, "; ".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller request counts (the CI perf-smoke configuration)",
    )
    args = parser.parse_args(argv)
    metrics = run(quick=args.quick)
    _write_json(metrics)
    print(_render(metrics))
    print(f"[json: {OUT_JSON}]")
    failures = check(metrics)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
